"""sqlite3 backend demonstrating the Q1/Q2/Q3 decomposition on real SQL.

The paper's formulation rewrites a complex aggregate query (Q1) into a cheap
object-enumeration query (Q2) plus an expensive per-object EXISTS predicate
(Q3).  This module materialises a :class:`~repro.query.table.Table` into an
in-memory sqlite3 database and runs both forms, so the rewriting — and the
numpy predicates used by the estimators — can be validated against a real SQL
engine.  It is a validation and demonstration backend; the estimators
themselves never require it.
"""

from __future__ import annotations

import itertools
import sqlite3
from typing import Callable, Sequence

import numpy as np

from repro.query.table import Table

#: Window functions (ROW_NUMBER/NTILE) arrived in sqlite 3.25; the pushdown
#: layouts below refuse to materialise on anything older so estimators fall
#: back to the client-side path instead of failing mid-estimate.
WINDOW_FUNCTIONS_AVAILABLE = sqlite3.sqlite_version_info >= (3, 25, 0)


def quote_identifier(name: str) -> str:
    """Quote a table or column name for safe interpolation into SQL text.

    Identifiers cannot be bound as parameters, so any name woven into DDL or
    query text must be delimited.  Double-quoting (the SQL standard form,
    with embedded double quotes doubled) makes reserved words (``select``,
    ``group``) and names containing hyphens or spaces legal; names that
    cannot be represented at all — empty, non-string, or containing a NUL
    byte, which sqlite rejects inside any token — raise ``ValueError``.
    """
    if not isinstance(name, str):
        raise ValueError(f"identifier must be a string, got {type(name).__name__}")
    if not name:
        raise ValueError("identifier must be non-empty")
    if "\x00" in name:
        raise ValueError("identifier must not contain NUL bytes")
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


#: Pragmas applied to every connection this module opens.  The service layer
#: shares one read-mostly connection across executor threads, so the settings
#: follow the concurrent-reader recipe: WAL keeps readers unblocked by the
#: occasional writer, ``busy_timeout`` retries instead of failing fast on a
#: held lock, and NORMAL sync is safe under WAL.  All four are no-ops or
#: harmless on the default ``:memory:`` database.
CONNECTION_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA busy_timeout=30000",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA foreign_keys=ON",
)


def table_to_sqlite(
    table: Table,
    connection: sqlite3.Connection | None = None,
    table_name: str | None = None,
    check_same_thread: bool = True,
    database: str = ":memory:",
) -> sqlite3.Connection:
    """Materialise a table into sqlite3 (in memory unless given a connection).

    Table and column names are delimited with :func:`quote_identifier`, so
    datasets named after SQL keywords or containing hyphens (the workload
    builders produce names like ``neighbors-S``) materialise verbatim
    instead of corrupting the DDL.

    Args:
        table: the table to materialise.
        connection: reuse an existing connection instead of opening one.
        table_name: name for the materialised table (defaults to the
            table's own name).
        check_same_thread: forwarded to :func:`sqlite3.connect` when a new
            connection is opened.  The estimate server evaluates requests on
            executor threads while serialising access with its own locks, so
            it passes ``False``; direct library use keeps sqlite's default
            same-thread guard.
        database: where to materialise when opening a new connection —
            ``":memory:"`` (the default) or a filesystem path.  A file
            database is what the contention tests use: a second connection
            from another thread or process can then genuinely hold locks
            against this one, exercising the WAL + ``busy_timeout`` recipe.
    """
    if connection is None:
        connection = sqlite3.connect(database, check_same_thread=check_same_thread)
        for pragma in CONNECTION_PRAGMAS:
            connection.execute(pragma)
    name = quote_identifier(table_name or table.name)
    columns = table.column_names
    column_spec = ", ".join(f"{quote_identifier(column)} REAL" for column in columns)
    connection.execute(f"DROP TABLE IF EXISTS {name}")
    connection.execute(f"CREATE TABLE {name} (rowidx INTEGER PRIMARY KEY, {column_spec})")
    placeholders = ", ".join("?" for _ in range(len(columns) + 1))
    rows = zip(
        range(table.num_rows),
        *[np.asarray(table.column(column), dtype=np.float64).tolist() for column in columns],
    )
    connection.executemany(f"INSERT INTO {name} VALUES ({placeholders})", rows)
    connection.commit()
    return connection


#: Monotonic suffix for scratch-table names, so several layouts can coexist
#: on one connection (and a leaked layout can never collide with a fresh one).
_LAYOUT_COUNTER = itertools.count(1)

#: Signature of the lock-retrying read executor the owning backend supplies
#: (``SqliteBackend._query_rows``): one SELECT, returned as fetched rows.
RunQuery = Callable[[str, Sequence], list]


def _ntile_sizes(population: int, groups: int) -> list[int]:
    """Group sizes NTILE(groups) produces over ``population`` ordered rows.

    The first ``population % groups`` tiles hold one extra row — the same
    distribution as ``np.array_split``, which is what lets the materialised
    NTILE column serve fixed-height stratum layouts verbatim.
    """
    base, extra = divmod(population, groups)
    return [base + 1 if index < extra else base for index in range(groups)]


class ScoreLayout:
    """A scratch strata layout: score ordering + stratum ids inside sqlite.

    Materialised once per sampling phase from ``(object, score)`` pairs in
    *arbitrary* order: the database re-derives the score ordering with
    ``ROW_NUMBER() OVER (ORDER BY score, pos)`` — ``pos`` (the position in
    the uploaded array) breaks ties exactly like the estimators' stable
    argsort — and assigns an initial fixed-height stratum id with
    ``NTILE(num_strata)`` over the same window.  Stage queries then join a
    request table of ordinal positions against the layout and the base
    table, so each estimator stage (pilot, stage II) is answered by **one**
    aggregate SELECT instead of per-row probe round-trips.

    All scratch tables are ``TEMP`` (per-connection, dropped with it);
    :meth:`close` drops them eagerly.  The layout performs no accounting —
    the counting query charges stage evaluations exactly like ordinary
    oracle batches.
    """

    def __init__(
        self,
        connection: sqlite3.Connection,
        run_query: RunQuery,
        base_table: str,
        objects: np.ndarray,
        scores: np.ndarray,
        num_strata: int,
    ) -> None:
        if num_strata <= 0:
            raise ValueError(f"num_strata must be positive, got {num_strata}")
        self._connection: sqlite3.Connection | None = connection
        self._run_query = run_query
        self._base = base_table
        self.size = int(objects.size)
        self.ntile_groups = int(num_strata)
        token = next(_LAYOUT_COUNTER)
        self._staging = quote_identifier(f"repro_layout_src_{token}")
        self._layout = quote_identifier(f"repro_layout_{token}")
        self._request = quote_identifier(f"repro_layout_req_{token}")
        self._cuts = quote_identifier(f"repro_layout_cuts_{token}")
        index_name = quote_identifier(f"repro_layout_ord_{token}")
        with connection:
            connection.execute(
                f"CREATE TEMP TABLE {self._staging} "
                "(pos INTEGER PRIMARY KEY, obj INTEGER NOT NULL, score REAL NOT NULL)"
            )
            connection.executemany(
                f"INSERT INTO {self._staging} VALUES (?, ?, ?)",
                zip(range(self.size), objects.tolist(), scores.tolist()),
            )
            # The window pass: ordering and fixed-height strata are computed
            # by the engine, not shipped from the client.  ``ord_pos`` is the
            # 0-based rank in score order; ``stratum`` starts as the NTILE
            # fixed-height assignment and is re-cut by ``assign_strata``
            # once a pilot-driven design exists.
            connection.execute(
                f"CREATE TEMP TABLE {self._layout} AS "
                "SELECT obj, score, "
                "ROW_NUMBER() OVER (ORDER BY score, pos) - 1 AS ord_pos, "
                f"NTILE({self.ntile_groups}) OVER (ORDER BY score, pos) - 1 AS stratum "
                f"FROM {self._staging}"
            )
            connection.execute(
                f"CREATE UNIQUE INDEX {index_name} ON {self._layout} (ord_pos)"
            )
            connection.execute(
                f"CREATE TEMP TABLE {self._request} "
                "(seq INTEGER PRIMARY KEY, ord_pos INTEGER NOT NULL)"
            )
            connection.execute(
                f"CREATE TEMP TABLE {self._cuts} (cut INTEGER NOT NULL)"
            )

    def _require_connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise RuntimeError("score layout is closed")
        return self._connection

    def assign_strata(self, slices: Sequence[tuple[int, int]]) -> None:
        """Re-cut the stratum column to a designed ``(start, end)`` layout.

        When the design is exactly the fixed-height layout the NTILE pass
        already materialised, the column is left untouched; otherwise the
        stratum of every row becomes the number of interior cut points at or
        below its ordinal position — one small UPDATE over the scratch
        table, never the base table.
        """
        connection = self._require_connection()
        sizes = [int(end) - int(start) for start, end in slices]
        if sum(sizes) != self.size:
            raise ValueError(
                f"stratum slices cover {sum(sizes)} rows, layout holds {self.size}"
            )
        if len(sizes) == self.ntile_groups and sizes == _ntile_sizes(
            self.size, self.ntile_groups
        ):
            return
        with connection:
            connection.execute(f"DELETE FROM {self._cuts}")
            connection.executemany(
                f"INSERT INTO {self._cuts} VALUES (?)",
                [(int(start),) for start, _ in list(slices)[1:]],
            )
            connection.execute(
                f"UPDATE {self._layout} SET stratum = "
                f"(SELECT COUNT(*) FROM {self._cuts} WHERE cut <= ord_pos)"
            )

    def evaluate_positions(
        self,
        positions: np.ndarray,
        label_expression: str,
        label_parameters: Sequence,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Labels of the rows at the given ordinal positions — one SELECT.

        The requested positions are staged into the request table (a scratch
        write, not a probe), then a single aggregate query joins request →
        layout → base table and computes every label in one round trip.
        Returns ``(objects, strata, labels)`` aligned with ``positions`` so
        the caller can verify the in-database ordering against its own.
        """
        connection = self._require_connection()
        positions = np.asarray(positions, dtype=np.int64)
        with connection:
            connection.execute(f"DELETE FROM {self._request}")
            connection.executemany(
                f"INSERT INTO {self._request} VALUES (?, ?)",
                zip(range(positions.size), positions.tolist()),
            )
        sql = (
            f"SELECT r.seq, l.obj, l.stratum, {label_expression} "
            f"FROM {self._request} r "
            f"JOIN {self._layout} l ON l.ord_pos = r.ord_pos "
            f"JOIN {self._base} o1 ON o1.rowidx = l.obj "
            "ORDER BY r.seq"
        )
        rows = self._run_query(sql, tuple(label_parameters))
        if len(rows) != positions.size:
            raise RuntimeError(
                f"stage query returned {len(rows)} rows for {positions.size} "
                "requested positions; the layout does not cover the request"
            )
        objects = np.fromiter((row[1] for row in rows), dtype=np.int64, count=len(rows))
        strata = np.fromiter((row[2] for row in rows), dtype=np.int64, count=len(rows))
        labels = np.fromiter(
            (float(row[3]) for row in rows), dtype=np.float64, count=len(rows)
        )
        return objects, strata, labels

    def stratum_sizes(self) -> list[int]:
        """Row count per stratum id, read back from the layout (audits/tests)."""
        rows = self._run_query(
            f"SELECT stratum, COUNT(*) FROM {self._layout} "
            "GROUP BY stratum ORDER BY stratum",
            (),
        )
        by_id = {int(stratum): int(count) for stratum, count in rows}
        groups = max(by_id, default=-1) + 1
        return [by_id.get(index, 0) for index in range(groups)]

    def close(self) -> None:
        """Drop the scratch tables; idempotent, safe on a closed connection."""
        connection, self._connection = self._connection, None
        if connection is None:
            return
        try:
            with connection:
                for name in (self._request, self._cuts, self._layout, self._staging):
                    connection.execute(f"DROP TABLE IF EXISTS {name}")
        except sqlite3.Error:  # pragma: no cover - connection already closed
            pass


class PermutationLayout:
    """A scratch seeded-draw-order column: PPS sampling answered by one SELECT.

    The client's seeded RNG fixes the full draw permutation (the
    exponential-races keys of
    :func:`repro.sampling.weighted.pps_permutation`); this layout stores it
    as a ``perm_rank`` column, after which *any* prefix of the draw sequence
    — the whole LWS sampling stage — is one aggregate query:
    ``WHERE perm_rank < n ORDER BY perm_rank``.  Randomness stays
    client-side (that is what keeps estimates byte-identical to numpy);
    only the label evaluation moves into the engine.
    """

    def __init__(
        self,
        connection: sqlite3.Connection,
        run_query: RunQuery,
        base_table: str,
        objects: np.ndarray,
        order: np.ndarray,
    ) -> None:
        self._connection: sqlite3.Connection | None = connection
        self._run_query = run_query
        self._base = base_table
        self.size = int(order.size)
        token = next(_LAYOUT_COUNTER)
        self._table = quote_identifier(f"repro_perm_{token}")
        drawn = np.asarray(objects, dtype=np.int64)[np.asarray(order, dtype=np.int64)]
        with connection:
            connection.execute(
                f"CREATE TEMP TABLE {self._table} "
                "(perm_rank INTEGER PRIMARY KEY, obj INTEGER NOT NULL)"
            )
            connection.executemany(
                f"INSERT INTO {self._table} VALUES (?, ?)",
                zip(range(self.size), drawn.tolist()),
            )

    def evaluate_prefix(
        self,
        size: int,
        label_expression: str,
        label_parameters: Sequence,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Labels of the first ``size`` draws, in draw order — one SELECT."""
        if self._connection is None:
            raise RuntimeError("permutation layout is closed")
        sql = (
            f"SELECT p.perm_rank, p.obj, {label_expression} "
            f"FROM {self._table} p "
            f"JOIN {self._base} o1 ON o1.rowidx = p.obj "
            "WHERE p.perm_rank < ? "
            "ORDER BY p.perm_rank"
        )
        rows = self._run_query(sql, (*label_parameters, int(size)))
        if len(rows) != int(size):
            raise RuntimeError(
                f"permutation stage query returned {len(rows)} rows for a "
                f"prefix of {size}; the layout does not cover the draw"
            )
        objects = np.fromiter((row[1] for row in rows), dtype=np.int64, count=len(rows))
        labels = np.fromiter(
            (float(row[2]) for row in rows), dtype=np.float64, count=len(rows)
        )
        return objects, labels

    def close(self) -> None:
        """Drop the scratch table; idempotent, safe on a closed connection."""
        connection, self._connection = self._connection, None
        if connection is None:
            return
        try:
            with connection:
                connection.execute(f"DROP TABLE IF EXISTS {self._table}")
        except sqlite3.Error:  # pragma: no cover - connection already closed
            pass


class SQLCountingBackend:
    """Run the paper's example queries directly in sqlite3.

    Args:
        table: the object table (Q2's output).
        table_name: name under which the table is materialised.
    """

    def __init__(self, table: Table, table_name: str | None = None) -> None:
        self.table = table
        self.table_name = table_name or table.name or "objects"
        self.connection = table_to_sqlite(table, table_name=self.table_name)

    def _quoted(self, identifier: str) -> str:
        return quote_identifier(identifier)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLCountingBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- full-query form (Q1) -------------------------------------------------
    def skyband_count_full_query(self, x_column: str, y_column: str, k: int) -> int:
        """Example 2's k-skyband size via the self-join + HAVING query."""
        name = self._quoted(self.table_name)
        x_column = self._quoted(x_column)
        y_column = self._quoted(y_column)
        sql = f"""
            SELECT
                (SELECT COUNT(*) FROM {name}) -
                (SELECT COUNT(*) FROM (
                    SELECT o1.rowidx
                    FROM {name} o1, {name} o2
                    WHERE o2.{x_column} >= o1.{x_column}
                      AND o2.{y_column} >= o1.{y_column}
                      AND (o2.{x_column} > o1.{x_column} OR o2.{y_column} > o1.{y_column})
                    GROUP BY o1.rowidx
                    HAVING COUNT(*) >= ?
                ))
        """
        # The self-join form in the paper counts groups with fewer than k
        # dominators, but objects with zero dominators produce no join rows at
        # all; counting the complement (groups with >= k dominators) and
        # subtracting from N handles them correctly.
        (count,) = self.connection.execute(sql, (k,)).fetchone()
        return int(count)

    def neighbor_count_full_query(
        self, x_column: str, y_column: str, max_neighbors: int, distance: float
    ) -> int:
        """Example 1's "few neighbours" count via the self-join query."""
        name = self._quoted(self.table_name)
        quoted_x = self._quoted(x_column)
        quoted_y = self._quoted(y_column)
        sql = f"""
            SELECT COUNT(*) FROM (
                SELECT o1.rowidx
                FROM {name} o1, {name} o2
                WHERE o1.rowidx != o2.rowidx
                  AND ((o1.{quoted_x} - o2.{quoted_x}) * (o1.{quoted_x} - o2.{quoted_x})
                     + (o1.{quoted_y} - o2.{quoted_y}) * (o1.{quoted_y} - o2.{quoted_y})) <= ?
                GROUP BY o1.rowidx
                HAVING COUNT(*) <= ?
            )
        """
        (with_neighbors,) = self.connection.execute(sql, (distance**2, max_neighbors)).fetchone()
        # Objects with zero neighbours never appear in the join output but do
        # satisfy "at most k neighbours"; add them back in.
        isolated = self._isolated_count(x_column, y_column, distance)
        return int(with_neighbors) + isolated

    def _isolated_count(self, x_column: str, y_column: str, distance: float) -> int:
        name = self._quoted(self.table_name)
        x_column = self._quoted(x_column)
        y_column = self._quoted(y_column)
        sql = f"""
            SELECT COUNT(*) FROM {name} o1
            WHERE NOT EXISTS (
                SELECT 1 FROM {name} o2
                WHERE o1.rowidx != o2.rowidx
                  AND ((o1.{x_column} - o2.{x_column}) * (o1.{x_column} - o2.{x_column})
                     + (o1.{y_column} - o2.{y_column}) * (o1.{y_column} - o2.{y_column})) <= ?
            )
        """
        (count,) = self.connection.execute(sql, (distance**2,)).fetchone()
        return int(count)

    # -- per-object predicate form (Q3) ---------------------------------------
    def skyband_predicate(self, x_column: str, y_column: str, k: int, index: int) -> bool:
        """Example 2's per-object predicate as a correlated aggregate subquery."""
        name = self._quoted(self.table_name)
        x_column = self._quoted(x_column)
        y_column = self._quoted(y_column)
        sql = f"""
            SELECT (
                SELECT COUNT(*) FROM {name}
                WHERE {x_column} >= (SELECT {x_column} FROM {name} WHERE rowidx = :idx)
                  AND {y_column} >= (SELECT {y_column} FROM {name} WHERE rowidx = :idx)
                  AND ({x_column} > (SELECT {x_column} FROM {name} WHERE rowidx = :idx)
                    OR {y_column} > (SELECT {y_column} FROM {name} WHERE rowidx = :idx))
            ) < :k
        """
        (result,) = self.connection.execute(sql, {"idx": index, "k": k}).fetchone()
        return bool(result)

    def neighbor_predicate(
        self, x_column: str, y_column: str, max_neighbors: int, distance: float, index: int
    ) -> bool:
        """Example 1's per-object predicate as a correlated aggregate subquery."""
        name = self._quoted(self.table_name)
        x_column = self._quoted(x_column)
        y_column = self._quoted(y_column)
        sql = f"""
            SELECT (
                SELECT COUNT(*) FROM {name} o2
                WHERE o2.rowidx != :idx
                  AND ((o2.{x_column} - (SELECT {x_column} FROM {name} WHERE rowidx = :idx))
                        * (o2.{x_column} - (SELECT {x_column} FROM {name} WHERE rowidx = :idx))
                     + (o2.{y_column} - (SELECT {y_column} FROM {name} WHERE rowidx = :idx))
                        * (o2.{y_column}
                           - (SELECT {y_column} FROM {name} WHERE rowidx = :idx))) <= :dist_sq
            ) <= :k
        """
        (result,) = self.connection.execute(
            sql, {"idx": index, "dist_sq": distance**2, "k": max_neighbors}
        ).fetchone()
        return bool(result)

    def count_with_predicate(self, predicate_name: str, indices: Sequence[int], **kwargs) -> int:
        """Evaluate a named per-object predicate over a set of objects."""
        evaluators = {
            "skyband": self.skyband_predicate,
            "neighbors": self.neighbor_predicate,
        }
        if predicate_name not in evaluators:
            raise ValueError(f"unknown predicate {predicate_name!r}")
        evaluator = evaluators[predicate_name]
        return sum(int(evaluator(index=int(index), **kwargs)) for index in indices)
