"""sqlite3 backend demonstrating the Q1/Q2/Q3 decomposition on real SQL.

The paper's formulation rewrites a complex aggregate query (Q1) into a cheap
object-enumeration query (Q2) plus an expensive per-object EXISTS predicate
(Q3).  This module materialises a :class:`~repro.query.table.Table` into an
in-memory sqlite3 database and runs both forms, so the rewriting — and the
numpy predicates used by the estimators — can be validated against a real SQL
engine.  It is a validation and demonstration backend; the estimators
themselves never require it.
"""

from __future__ import annotations

import sqlite3
from typing import Sequence

import numpy as np

from repro.query.table import Table


def quote_identifier(name: str) -> str:
    """Quote a table or column name for safe interpolation into SQL text.

    Identifiers cannot be bound as parameters, so any name woven into DDL or
    query text must be delimited.  Double-quoting (the SQL standard form,
    with embedded double quotes doubled) makes reserved words (``select``,
    ``group``) and names containing hyphens or spaces legal; names that
    cannot be represented at all — empty, non-string, or containing a NUL
    byte, which sqlite rejects inside any token — raise ``ValueError``.
    """
    if not isinstance(name, str):
        raise ValueError(f"identifier must be a string, got {type(name).__name__}")
    if not name:
        raise ValueError("identifier must be non-empty")
    if "\x00" in name:
        raise ValueError("identifier must not contain NUL bytes")
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


#: Pragmas applied to every connection this module opens.  The service layer
#: shares one read-mostly connection across executor threads, so the settings
#: follow the concurrent-reader recipe: WAL keeps readers unblocked by the
#: occasional writer, ``busy_timeout`` retries instead of failing fast on a
#: held lock, and NORMAL sync is safe under WAL.  All four are no-ops or
#: harmless on the default ``:memory:`` database.
CONNECTION_PRAGMAS = (
    "PRAGMA journal_mode=WAL",
    "PRAGMA busy_timeout=30000",
    "PRAGMA synchronous=NORMAL",
    "PRAGMA foreign_keys=ON",
)


def table_to_sqlite(
    table: Table,
    connection: sqlite3.Connection | None = None,
    table_name: str | None = None,
    check_same_thread: bool = True,
    database: str = ":memory:",
) -> sqlite3.Connection:
    """Materialise a table into sqlite3 (in memory unless given a connection).

    Table and column names are delimited with :func:`quote_identifier`, so
    datasets named after SQL keywords or containing hyphens (the workload
    builders produce names like ``neighbors-S``) materialise verbatim
    instead of corrupting the DDL.

    Args:
        table: the table to materialise.
        connection: reuse an existing connection instead of opening one.
        table_name: name for the materialised table (defaults to the
            table's own name).
        check_same_thread: forwarded to :func:`sqlite3.connect` when a new
            connection is opened.  The estimate server evaluates requests on
            executor threads while serialising access with its own locks, so
            it passes ``False``; direct library use keeps sqlite's default
            same-thread guard.
        database: where to materialise when opening a new connection —
            ``":memory:"`` (the default) or a filesystem path.  A file
            database is what the contention tests use: a second connection
            from another thread or process can then genuinely hold locks
            against this one, exercising the WAL + ``busy_timeout`` recipe.
    """
    if connection is None:
        connection = sqlite3.connect(database, check_same_thread=check_same_thread)
        for pragma in CONNECTION_PRAGMAS:
            connection.execute(pragma)
    name = quote_identifier(table_name or table.name)
    columns = table.column_names
    column_spec = ", ".join(f"{quote_identifier(column)} REAL" for column in columns)
    connection.execute(f"DROP TABLE IF EXISTS {name}")
    connection.execute(f"CREATE TABLE {name} (rowidx INTEGER PRIMARY KEY, {column_spec})")
    placeholders = ", ".join("?" for _ in range(len(columns) + 1))
    rows = zip(
        range(table.num_rows),
        *[np.asarray(table.column(column), dtype=np.float64).tolist() for column in columns],
    )
    connection.executemany(f"INSERT INTO {name} VALUES ({placeholders})", rows)
    connection.commit()
    return connection


class SQLCountingBackend:
    """Run the paper's example queries directly in sqlite3.

    Args:
        table: the object table (Q2's output).
        table_name: name under which the table is materialised.
    """

    def __init__(self, table: Table, table_name: str | None = None) -> None:
        self.table = table
        self.table_name = table_name or table.name or "objects"
        self.connection = table_to_sqlite(table, table_name=self.table_name)

    def _quoted(self, identifier: str) -> str:
        return quote_identifier(identifier)

    def close(self) -> None:
        self.connection.close()

    def __enter__(self) -> "SQLCountingBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- full-query form (Q1) -------------------------------------------------
    def skyband_count_full_query(self, x_column: str, y_column: str, k: int) -> int:
        """Example 2's k-skyband size via the self-join + HAVING query."""
        name = self._quoted(self.table_name)
        x_column = self._quoted(x_column)
        y_column = self._quoted(y_column)
        sql = f"""
            SELECT
                (SELECT COUNT(*) FROM {name}) -
                (SELECT COUNT(*) FROM (
                    SELECT o1.rowidx
                    FROM {name} o1, {name} o2
                    WHERE o2.{x_column} >= o1.{x_column}
                      AND o2.{y_column} >= o1.{y_column}
                      AND (o2.{x_column} > o1.{x_column} OR o2.{y_column} > o1.{y_column})
                    GROUP BY o1.rowidx
                    HAVING COUNT(*) >= ?
                ))
        """
        # The self-join form in the paper counts groups with fewer than k
        # dominators, but objects with zero dominators produce no join rows at
        # all; counting the complement (groups with >= k dominators) and
        # subtracting from N handles them correctly.
        (count,) = self.connection.execute(sql, (k,)).fetchone()
        return int(count)

    def neighbor_count_full_query(
        self, x_column: str, y_column: str, max_neighbors: int, distance: float
    ) -> int:
        """Example 1's "few neighbours" count via the self-join query."""
        name = self._quoted(self.table_name)
        quoted_x = self._quoted(x_column)
        quoted_y = self._quoted(y_column)
        sql = f"""
            SELECT COUNT(*) FROM (
                SELECT o1.rowidx
                FROM {name} o1, {name} o2
                WHERE o1.rowidx != o2.rowidx
                  AND ((o1.{quoted_x} - o2.{quoted_x}) * (o1.{quoted_x} - o2.{quoted_x})
                     + (o1.{quoted_y} - o2.{quoted_y}) * (o1.{quoted_y} - o2.{quoted_y})) <= ?
                GROUP BY o1.rowidx
                HAVING COUNT(*) <= ?
            )
        """
        (with_neighbors,) = self.connection.execute(sql, (distance**2, max_neighbors)).fetchone()
        # Objects with zero neighbours never appear in the join output but do
        # satisfy "at most k neighbours"; add them back in.
        isolated = self._isolated_count(x_column, y_column, distance)
        return int(with_neighbors) + isolated

    def _isolated_count(self, x_column: str, y_column: str, distance: float) -> int:
        name = self._quoted(self.table_name)
        x_column = self._quoted(x_column)
        y_column = self._quoted(y_column)
        sql = f"""
            SELECT COUNT(*) FROM {name} o1
            WHERE NOT EXISTS (
                SELECT 1 FROM {name} o2
                WHERE o1.rowidx != o2.rowidx
                  AND ((o1.{x_column} - o2.{x_column}) * (o1.{x_column} - o2.{x_column})
                     + (o1.{y_column} - o2.{y_column}) * (o1.{y_column} - o2.{y_column})) <= ?
            )
        """
        (count,) = self.connection.execute(sql, (distance**2,)).fetchone()
        return int(count)

    # -- per-object predicate form (Q3) ---------------------------------------
    def skyband_predicate(self, x_column: str, y_column: str, k: int, index: int) -> bool:
        """Example 2's per-object predicate as a correlated aggregate subquery."""
        name = self._quoted(self.table_name)
        x_column = self._quoted(x_column)
        y_column = self._quoted(y_column)
        sql = f"""
            SELECT (
                SELECT COUNT(*) FROM {name}
                WHERE {x_column} >= (SELECT {x_column} FROM {name} WHERE rowidx = :idx)
                  AND {y_column} >= (SELECT {y_column} FROM {name} WHERE rowidx = :idx)
                  AND ({x_column} > (SELECT {x_column} FROM {name} WHERE rowidx = :idx)
                    OR {y_column} > (SELECT {y_column} FROM {name} WHERE rowidx = :idx))
            ) < :k
        """
        (result,) = self.connection.execute(sql, {"idx": index, "k": k}).fetchone()
        return bool(result)

    def neighbor_predicate(
        self, x_column: str, y_column: str, max_neighbors: int, distance: float, index: int
    ) -> bool:
        """Example 1's per-object predicate as a correlated aggregate subquery."""
        name = self._quoted(self.table_name)
        x_column = self._quoted(x_column)
        y_column = self._quoted(y_column)
        sql = f"""
            SELECT (
                SELECT COUNT(*) FROM {name} o2
                WHERE o2.rowidx != :idx
                  AND ((o2.{x_column} - (SELECT {x_column} FROM {name} WHERE rowidx = :idx))
                        * (o2.{x_column} - (SELECT {x_column} FROM {name} WHERE rowidx = :idx))
                     + (o2.{y_column} - (SELECT {y_column} FROM {name} WHERE rowidx = :idx))
                        * (o2.{y_column}
                           - (SELECT {y_column} FROM {name} WHERE rowidx = :idx))) <= :dist_sq
            ) <= :k
        """
        (result,) = self.connection.execute(
            sql, {"idx": index, "dist_sq": distance**2, "k": max_neighbors}
        ).fetchone()
        return bool(result)

    def count_with_predicate(self, predicate_name: str, indices: Sequence[int], **kwargs) -> int:
        """Evaluate a named per-object predicate over a set of objects."""
        evaluators = {
            "skyband": self.skyband_predicate,
            "neighbors": self.neighbor_predicate,
        }
        if predicate_name not in evaluators:
            raise ValueError(f"unknown predicate {predicate_name!r}")
        evaluator = evaluators[predicate_name]
        return sum(int(evaluator(index=int(index), **kwargs)) for index in indices)
