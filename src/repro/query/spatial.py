"""Spatial helpers: grid index, neighbour counting and dominance counting.

Two uses:

* The expensive predicates evaluate *per object* (a full scan or a grid probe
  per call) — this is the cost the paper's estimators avoid paying for every
  object.
* Ground truth for the experiments needs the exact label of *every* object;
  :func:`neighbor_counts` and :func:`dominance_counts` compute those in one
  bulk pass (grid sweep and Fenwick-tree sweep respectively) so that even the
  full-size datasets can be labelled exactly.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np


class GridIndex:
    """Uniform grid over 2-d points supporting radius counting.

    Args:
        points: ``(N, 2)`` array of coordinates.
        cell_size: side length of each grid cell; radius queries with
            ``radius <= cell_size`` only need to inspect the 3x3 cell
            neighbourhood.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must be an (N, 2) array")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = points
        self.cell_size = float(cell_size)
        self._origin = points.min(axis=0) if points.size else np.zeros(2)
        cells = np.floor((points - self._origin) / self.cell_size).astype(np.int64)
        buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        for index, (cx, cy) in enumerate(cells):
            buckets[(int(cx), int(cy))].append(index)
        self._buckets = {key: np.asarray(val, dtype=np.int64) for key, val in buckets.items()}
        self._cells = cells

    def _candidates(self, cell: tuple[int, int], reach: int) -> np.ndarray:
        """Indices of points in the ``(2*reach+1)²`` neighbourhood of a cell."""
        found = []
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                bucket = self._buckets.get((cell[0] + dx, cell[1] + dy))
                if bucket is not None:
                    found.append(bucket)
        if not found:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(found)

    def count_within(self, index: int, radius: float, exclude_self: bool = True) -> int:
        """Count points within ``radius`` of the ``index``-th point."""
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(np.ceil(radius / self.cell_size))
        cell = (int(self._cells[index, 0]), int(self._cells[index, 1]))
        candidates = self._candidates(cell, reach)
        deltas = self.points[candidates] - self.points[index]
        within = int(np.sum(np.einsum("ij,ij->i", deltas, deltas) <= radius**2))
        if exclude_self:
            within -= 1
        return within

    def count_within_bulk(self, radius: float, exclude_self: bool = True) -> np.ndarray:
        """Count, for every point, the points within ``radius`` of it.

        Processes the points cell by cell so that each distance matrix stays
        small; this is how ground-truth labels for the Neighbors workload are
        produced.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(np.ceil(radius / self.cell_size))
        counts = np.zeros(self.points.shape[0], dtype=np.int64)
        radius_sq = radius**2
        for cell, members in self._buckets.items():
            candidates = self._candidates(cell, reach)
            member_points = self.points[members]
            candidate_points = self.points[candidates]
            # Pairwise squared distances between this cell's members and the
            # neighbourhood candidates.
            cross = member_points @ candidate_points.T
            member_sq = np.einsum("ij,ij->i", member_points, member_points)
            candidate_sq = np.einsum("ij,ij->i", candidate_points, candidate_points)
            distances_sq = member_sq[:, None] - 2.0 * cross + candidate_sq[None, :]
            counts[members] = (distances_sq <= radius_sq).sum(axis=1)
        if exclude_self:
            counts -= 1
        return counts


def neighbor_counts(
    points: np.ndarray, radius: float, cell_size: float | None = None
) -> np.ndarray:
    """Number of other points within ``radius`` of each point."""
    points = np.asarray(points, dtype=np.float64)
    index = GridIndex(points, cell_size or radius)
    return index.count_within_bulk(radius, exclude_self=True)


class FenwickTree:
    """Binary indexed tree over integer positions ``0..size-1``."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, position: int, amount: int = 1) -> None:
        """Add ``amount`` at ``position``."""
        index = position + 1
        while index <= self.size:
            self._tree[index] += amount
            index += index & (-index)

    def prefix_sum(self, position: int) -> int:
        """Sum of values at positions ``0..position`` inclusive."""
        index = position + 1
        total = 0
        while index > 0:
            total += int(self._tree[index])
            index -= index & (-index)
        return total

    def suffix_sum(self, position: int) -> int:
        """Sum of values at positions ``position..size-1`` inclusive."""
        total_all = self.prefix_sum(self.size - 1)
        if position == 0:
            return total_all
        return total_all - self.prefix_sum(position - 1)


def dominance_counts(points: np.ndarray) -> np.ndarray:
    """For every point, count how many other points dominate it.

    A point ``p`` dominates ``o`` when ``p.x >= o.x`` and ``p.y >= o.y`` with
    at least one strict inequality (the k-skyband definition of Example 2).
    Computed with a plane sweep over x (descending) and a Fenwick tree over y
    ranks, so exact ground truth is available in ``O(N log N)`` even for the
    full-size Sports table.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (N, 2) array")
    n = points.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    y_values = points[:, 1]
    # Rank compression of y so the Fenwick tree stays small.
    unique_y, y_ranks = np.unique(y_values, return_inverse=True)
    tree = FenwickTree(unique_y.size)

    counts = np.zeros(n, dtype=np.int64)
    order = np.lexsort((points[:, 1], points[:, 0]))[::-1]  # x descending
    sorted_x = points[order, 0]

    # Count of exact duplicates of each point (including the point itself):
    # any point at the same (x, y) is counted by the >=/>= sweep but does not
    # dominate.
    _, inverse, duplicate_counts = np.unique(
        points, axis=0, return_inverse=True, return_counts=True
    )
    equal_counts = duplicate_counts[inverse]

    position = 0
    while position < n:
        # Gather the run of points sharing the same x value.
        run_end = position
        while run_end + 1 < n and sorted_x[run_end + 1] == sorted_x[position]:
            run_end += 1
        run = order[position : run_end + 1]
        # Insert the whole run first: points with equal x and greater-or-equal
        # y participate in >= comparisons.
        for point_index in run:
            tree.add(int(y_ranks[point_index]))
        for point_index in run:
            geq = tree.suffix_sum(int(y_ranks[point_index]))
            counts[point_index] = geq - int(equal_counts[point_index])
        position = run_end + 1
    return counts


def dominance_count_single(points: np.ndarray, index: int) -> int:
    """Count dominators of one point by a full scan (the expensive path)."""
    points = np.asarray(points, dtype=np.float64)
    target = points[index]
    geq = (points[:, 0] >= target[0]) & (points[:, 1] >= target[1])
    strict = (points[:, 0] > target[0]) | (points[:, 1] > target[1])
    return int(np.sum(geq & strict))
