"""Spatial helpers: grid index, neighbour counting and dominance counting.

Two uses:

* The expensive predicates evaluate *per object* (a full scan or a grid probe
  per call) — this is the cost the paper's estimators avoid paying for every
  object.
* Ground truth for the experiments needs the exact label of *every* object;
  :func:`neighbor_counts` and :func:`dominance_counts` compute those in one
  bulk pass (grid sweep and Fenwick-tree sweep respectively) so that even the
  full-size datasets can be labelled exactly.

The grid index stores its buckets in CSR-style flat arrays (one permutation
of the point indices sorted by cell key, plus binary-searchable key runs), so
batched queries (:meth:`GridIndex.count_within_batch`) amortise the bucket
gathering over every query point that shares a cell.  The per-object probe
loop is retained as :meth:`GridIndex.count_within_batch_reference` so the
equivalence tests and the tracked micro-benchmarks can compare the kernels
against the original scalar path.
"""

from __future__ import annotations

import numpy as np

#: Cap on the number of pairwise-distance entries a batched kernel
#: materialises at once; keeps peak memory bounded without changing results
#: (counts are sums of per-pair booleans, which are order-independent).
_MAX_PAIR_BLOCK = 1 << 22


class GridIndex:
    """Uniform grid over 2-d points supporting radius counting.

    Buckets live in a CSR-style layout: ``_order`` holds all point indices
    sorted by their linearised cell key (ties keep insertion order), and any
    bucket — or any contiguous run of buckets along one grid row — is a slice
    of ``_order`` found by binary search over ``_sorted_keys``.

    Args:
        points: ``(N, 2)`` array of coordinates.
        cell_size: side length of each grid cell; radius queries with
            ``radius <= cell_size`` only need to inspect the 3x3 cell
            neighbourhood.
    """

    def __init__(self, points: np.ndarray, cell_size: float) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must be an (N, 2) array")
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.points = points
        self.cell_size = float(cell_size)
        self._origin = points.min(axis=0) if points.size else np.zeros(2)
        cells = np.floor((points - self._origin) / self.cell_size).astype(np.int64)
        self._cells = cells
        # Linearise (cx, cy) -> cx * width + cy.  Cell coordinates are
        # non-negative because the origin is the coordinate-wise minimum, so
        # the key is collision-free and one grid row occupies a contiguous
        # key range [cx * width, cx * width + width - 1].
        if points.shape[0]:
            self._width = int(cells[:, 1].max()) + 1
            self._keys = cells[:, 0] * self._width + cells[:, 1]
            self._order = np.argsort(self._keys, kind="stable")
            self._sorted_keys = self._keys[self._order]
        else:
            self._width = 1
            self._keys = np.empty(0, dtype=np.int64)
            self._order = np.empty(0, dtype=np.int64)
            self._sorted_keys = np.empty(0, dtype=np.int64)
        self._unique_keys, starts = np.unique(self._sorted_keys, return_index=True)
        self._bucket_starts = starts
        self._bucket_ends = np.append(starts[1:], self._order.size)
        # ‖p‖² per point, shared by every bulk sweep (the per-pair expansion
        # ‖a‖² - 2a·b + ‖b‖² re-reads these for all 9 neighbourhoods a point
        # participates in; the per-element arithmetic is unchanged).
        self._point_sq = np.einsum("ij,ij->i", points, points)

    def _candidates(self, cell: tuple[int, int], reach: int) -> np.ndarray:
        """Indices of points in the ``(2*reach+1)²`` neighbourhood of a cell."""
        cx, cy = int(cell[0]), int(cell[1])
        low_cy = max(cy - reach, 0)
        high_cy = min(cy + reach, self._width - 1)
        if low_cy > high_cy or self._order.size == 0:
            return np.empty(0, dtype=np.int64)
        rows = np.arange(cx - reach, cx + reach + 1, dtype=np.int64)
        lows = np.searchsorted(self._sorted_keys, rows * self._width + low_cy, side="left")
        highs = np.searchsorted(self._sorted_keys, rows * self._width + high_cy, side="right")
        found = [self._order[lo:hi] for lo, hi in zip(lows, highs) if hi > lo]
        if not found:
            return np.empty(0, dtype=np.int64)
        return found[0] if len(found) == 1 else np.concatenate(found)

    def count_within(self, index: int, radius: float, exclude_self: bool = True) -> int:
        """Count points within ``radius`` of the ``index``-th point.

        This is the paper's "expensive" per-object probe: one bucket gather
        and one distance pass per call.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(np.ceil(radius / self.cell_size))
        cell = (int(self._cells[index, 0]), int(self._cells[index, 1]))
        candidates = self._candidates(cell, reach)
        deltas = self.points[candidates] - self.points[index]
        within = int(np.sum(np.einsum("ij,ij->i", deltas, deltas) <= radius**2))
        if exclude_self:
            within -= 1
        return within

    def count_within_batch(
        self, indices: np.ndarray, radius: float, exclude_self: bool = True
    ) -> np.ndarray:
        """Count neighbours within ``radius`` for a batch of query points.

        Query points are grouped by cell so each neighbourhood is gathered
        once per distinct cell instead of once per point; within a group the
        distance test runs as one (group × candidates) matrix pass.  The
        per-pair arithmetic matches :meth:`count_within` exactly, so the
        returned counts are identical to probing point by point.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        indices = np.asarray(indices, dtype=np.int64)
        counts = np.empty(indices.size, dtype=np.int64)
        if indices.size == 0:
            return counts
        reach = int(np.ceil(radius / self.cell_size))
        radius_sq = radius**2
        keys = self._keys[indices]
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        group_starts = np.flatnonzero(
            np.concatenate([[True], sorted_keys[1:] != sorted_keys[:-1]])
        )
        group_ends = np.append(group_starts[1:], indices.size)
        for start, end in zip(group_starts, group_ends):
            members = order[start:end]
            first = indices[members[0]]
            cell = (int(self._cells[first, 0]), int(self._cells[first, 1]))
            candidates = self._candidates(cell, reach)
            candidate_points = self.points[candidates]
            # Bound the temporary (chunk × candidates × 2) delta tensor.
            chunk = max(1, _MAX_PAIR_BLOCK // max(candidates.size, 1))
            for offset in range(0, members.size, chunk):
                block = members[offset : offset + chunk]
                query_points = self.points[indices[block]]
                deltas = candidate_points[None, :, :] - query_points[:, None, :]
                distances_sq = np.einsum("ijk,ijk->ij", deltas, deltas)
                counts[block] = (distances_sq <= radius_sq).sum(axis=1)
        if exclude_self:
            counts -= 1
        return counts

    def count_within_batch_reference(
        self, indices: np.ndarray, radius: float, exclude_self: bool = True
    ) -> np.ndarray:
        """Scalar reference for :meth:`count_within_batch`: one probe per point.

        Retained verbatim from the pre-kernel implementation so equivalence
        tests and the micro-benchmarks can measure the batched path against
        the original per-object loop.
        """
        indices = np.asarray(indices, dtype=np.int64)
        counts = np.empty(indices.size, dtype=np.int64)
        for position, index in enumerate(indices):
            counts[position] = self.count_within(int(index), radius, exclude_self)
        return counts

    def count_within_bulk(self, radius: float, exclude_self: bool = True) -> np.ndarray:
        """Count, for every point, the points within ``radius`` of it.

        Processes the points cell by cell so that each distance matrix stays
        small; this is how ground-truth labels for the Neighbors workload are
        produced.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(np.ceil(radius / self.cell_size))
        counts = np.zeros(self.points.shape[0], dtype=np.int64)
        radius_sq = radius**2
        for slot in range(self._unique_keys.size):
            members = self._order[self._bucket_starts[slot] : self._bucket_ends[slot]]
            key = int(self._unique_keys[slot])
            cell = (key // self._width, key % self._width)
            candidates = self._candidates(cell, reach)
            member_points = self.points[members]
            candidate_points = self.points[candidates]
            # Pairwise squared distances between this cell's members and the
            # neighbourhood candidates.
            cross = member_points @ candidate_points.T
            member_sq = self._point_sq[members]
            candidate_sq = self._point_sq[candidates]
            distances_sq = member_sq[:, None] - 2.0 * cross + candidate_sq[None, :]
            counts[members] = (distances_sq <= radius_sq).sum(axis=1)
        if exclude_self:
            counts -= 1
        return counts


def neighbor_counts(
    points: np.ndarray, radius: float, cell_size: float | None = None
) -> np.ndarray:
    """Number of other points within ``radius`` of each point."""
    points = np.asarray(points, dtype=np.float64)
    index = GridIndex(points, cell_size or radius)
    return index.count_within_bulk(radius, exclude_self=True)


class FenwickTree:
    """Binary indexed tree over integer positions ``0..size-1``."""

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ValueError("size must be positive")
        self.size = size
        self._tree = np.zeros(size + 1, dtype=np.int64)

    def add(self, position: int, amount: int = 1) -> None:
        """Add ``amount`` at ``position``."""
        index = position + 1
        while index <= self.size:
            self._tree[index] += amount
            index += index & (-index)

    def prefix_sum(self, position: int) -> int:
        """Sum of values at positions ``0..position`` inclusive."""
        index = position + 1
        total = 0
        while index > 0:
            total += int(self._tree[index])
            index -= index & (-index)
        return total

    def suffix_sum(self, position: int) -> int:
        """Sum of values at positions ``position..size-1`` inclusive."""
        total_all = self.prefix_sum(self.size - 1)
        if position == 0:
            return total_all
        return total_all - self.prefix_sum(position - 1)


def dominance_counts(points: np.ndarray) -> np.ndarray:
    """For every point, count how many other points dominate it.

    A point ``p`` dominates ``o`` when ``p.x >= o.x`` and ``p.y >= o.y`` with
    at least one strict inequality (the k-skyband definition of Example 2).
    Computed with a plane sweep over x (descending) and a Fenwick tree over y
    ranks, so exact ground truth is available in ``O(N log N)`` even for the
    full-size Sports table.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be an (N, 2) array")
    n = points.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)

    y_values = points[:, 1]
    # Rank compression of y so the Fenwick tree stays small.
    unique_y, y_ranks = np.unique(y_values, return_inverse=True)
    tree = FenwickTree(unique_y.size)

    counts = np.zeros(n, dtype=np.int64)
    order = np.lexsort((points[:, 1], points[:, 0]))[::-1]  # x descending
    sorted_x = points[order, 0]

    # Count of exact duplicates of each point (including the point itself):
    # any point at the same (x, y) is counted by the >=/>= sweep but does not
    # dominate.
    _, inverse, duplicate_counts = np.unique(
        points, axis=0, return_inverse=True, return_counts=True
    )
    equal_counts = duplicate_counts[inverse]

    position = 0
    while position < n:
        # Gather the run of points sharing the same x value.
        run_end = position
        while run_end + 1 < n and sorted_x[run_end + 1] == sorted_x[position]:
            run_end += 1
        run = order[position : run_end + 1]
        # Insert the whole run first: points with equal x and greater-or-equal
        # y participate in >= comparisons.
        for point_index in run:
            tree.add(int(y_ranks[point_index]))
        for point_index in run:
            geq = tree.suffix_sum(int(y_ranks[point_index]))
            counts[point_index] = geq - int(equal_counts[point_index])
        position = run_end + 1
    return counts


def dominance_count_single(points: np.ndarray, index: int) -> int:
    """Count dominators of one point by a full scan (the expensive path)."""
    points = np.asarray(points, dtype=np.float64)
    target = points[index]
    geq = (points[:, 0] >= target[0]) & (points[:, 1] >= target[1])
    strict = (points[:, 0] > target[0]) | (points[:, 1] > target[1])
    return int(np.sum(geq & strict))


def dominance_count_batch(points: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Dominator counts for a batch of points via a blocked matrix scan.

    Replaces one full column scan per queried point with a
    (block × population) comparison matrix per block of queries; the per-pair
    comparisons are identical to :func:`dominance_count_single`, so the
    counts match the scalar path exactly.
    """
    points = np.asarray(points, dtype=np.float64)
    indices = np.asarray(indices, dtype=np.int64)
    counts = np.empty(indices.size, dtype=np.int64)
    if indices.size == 0:
        return counts
    x_col = points[:, 0]
    y_col = points[:, 1]
    block = max(1, _MAX_PAIR_BLOCK // max(points.shape[0], 1))
    for offset in range(0, indices.size, block):
        targets = points[indices[offset : offset + block]]
        geq = (x_col[None, :] >= targets[:, 0][:, None]) & (
            y_col[None, :] >= targets[:, 1][:, None]
        )
        strict = (x_col[None, :] > targets[:, 0][:, None]) | (
            y_col[None, :] > targets[:, 1][:, None]
        )
        counts[offset : offset + targets.shape[0]] = (geq & strict).sum(axis=1)
    return counts
