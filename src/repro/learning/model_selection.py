"""Model-selection utilities: splits and k-fold cross validation.

The Adjusted Count quantification estimator (Section 3.2) estimates the
classifier's true/false positive rates by k-fold cross validation on the
labelled training sample; :func:`cross_validated_rates` implements exactly
that loop, and :func:`cross_validated_scores` exposes per-object
out-of-fold scores for calibration diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.learning.base import Classifier, check_features, check_labels
from repro.learning.metrics import false_positive_rate, true_positive_rate
from repro.sampling.rng import SeedLike, resolve_rng


@dataclass
class KFold:
    """k-fold cross-validation splitter.

    Args:
        n_splits: number of folds.
        shuffle: whether to shuffle before splitting.
        seed: RNG seed for the shuffle.
    """

    n_splits: int = 5
    shuffle: bool = True
    seed: SeedLike = None

    def split(self, num_rows: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if self.n_splits < 2:
            raise ValueError("n_splits must be at least 2")
        if num_rows < self.n_splits:
            raise ValueError(
                f"cannot split {num_rows} rows into {self.n_splits} folds"
            )
        indices = np.arange(num_rows)
        if self.shuffle:
            resolve_rng(self.seed).shuffle(indices)
        folds = np.array_split(indices, self.n_splits)
        for fold_index in range(self.n_splits):
            test = folds[fold_index]
            train = np.concatenate(
                [folds[i] for i in range(self.n_splits) if i != fold_index]
            )
            yield train, test


def train_test_split(
    features: np.ndarray,
    labels: np.ndarray,
    test_fraction: float = 0.25,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Random split into training and test portions."""
    features = check_features(features)
    labels = check_labels(labels, features.shape[0])
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must lie strictly between 0 and 1")
    rng = resolve_rng(seed)
    order = rng.permutation(features.shape[0])
    cut = int(round(test_fraction * features.shape[0]))
    test_idx, train_idx = order[:cut], order[cut:]
    return features[train_idx], labels[train_idx], features[test_idx], labels[test_idx]


def cross_validated_scores(
    classifier: Classifier,
    features: np.ndarray,
    labels: np.ndarray,
    n_splits: int = 5,
    seed: SeedLike = None,
) -> np.ndarray:
    """Out-of-fold scores for every training object."""
    features = check_features(features)
    labels = check_labels(labels, features.shape[0])
    scores = np.full(labels.size, np.nan)
    splitter = KFold(n_splits=n_splits, shuffle=True, seed=seed)
    for train_idx, test_idx in splitter.split(labels.size):
        fold_labels = labels[train_idx]
        if np.unique(fold_labels).size < 2:
            # A single-class fold cannot train a meaningful model; fall back
            # to the constant prior so downstream rates stay defined.
            scores[test_idx] = float(fold_labels.mean())
            continue
        model = classifier.clone()
        model.fit(features[train_idx], fold_labels)
        scores[test_idx] = model.predict_scores(features[test_idx])
    return scores


def cross_validated_rates(
    classifier: Classifier,
    features: np.ndarray,
    labels: np.ndarray,
    n_splits: int = 5,
    threshold: float = 0.5,
    seed: SeedLike = None,
) -> tuple[float, float]:
    """Estimate (TPR, FPR) by k-fold cross validation.

    These are the ``t̂pr`` and ``f̂pr`` terms of the Adjusted Count estimator
    (eq. 2 in the paper).
    """
    scores = cross_validated_scores(classifier, features, labels, n_splits, seed)
    predictions = (scores >= threshold).astype(np.float64)
    labels = check_labels(labels)
    return (
        true_positive_rate(labels, predictions),
        false_positive_rate(labels, predictions),
    )
