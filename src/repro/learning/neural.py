"""Small feed-forward neural-network classifier.

The paper's "NN" classifier is a simple two-layer network with (5, 2)
intermediate layers; it is intentionally weak, and Figures 6 and 7 use it to
show that LSS stays robust while quantification learning can fail badly.
This implementation is a full-batch Adam-trained multilayer perceptron with
tanh hidden activations and a sigmoid output.
"""

from __future__ import annotations

import numpy as np

from repro.learning.base import Classifier, check_features, check_labels
from repro.learning.logistic import _sigmoid
from repro.learning.scaling import StandardScaler


class NeuralNetworkClassifier(Classifier):
    """Multilayer perceptron for binary classification.

    Args:
        hidden_layers: sizes of the hidden layers (the paper uses ``(5, 2)``).
        learning_rate: Adam step size.
        n_epochs: number of full-batch epochs.
        l2_penalty: L2 regularisation on the weights.
        seed: RNG seed for weight initialisation.
        standardize: whether to standardise features internally.
    """

    def __init__(
        self,
        hidden_layers: tuple[int, ...] = (5, 2),
        learning_rate: float = 0.01,
        n_epochs: int = 300,
        l2_penalty: float = 1e-4,
        seed: int | None = 0,
        standardize: bool = True,
    ) -> None:
        if any(size <= 0 for size in hidden_layers):
            raise ValueError("hidden layer sizes must be positive")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_epochs <= 0:
            raise ValueError("n_epochs must be positive")
        self.hidden_layers = tuple(hidden_layers)
        self.learning_rate = learning_rate
        self.n_epochs = n_epochs
        self.l2_penalty = l2_penalty
        self.seed = seed
        self.standardize = standardize

    def _initialise(self, n_features: int, rng: np.random.Generator) -> None:
        sizes = (n_features, *self.hidden_layers, 1)
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / (fan_in + fan_out))
            self.weights_.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(self, features: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Return the per-layer activations and the output probabilities."""
        activations = [features]
        hidden = features
        for layer in range(len(self.weights_) - 1):
            hidden = np.tanh(hidden @ self.weights_[layer] + self.biases_[layer])
            activations.append(hidden)
        logits = hidden @ self.weights_[-1] + self.biases_[-1]
        return activations, _sigmoid(logits).ravel()

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "NeuralNetworkClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        self.scaler_ = StandardScaler().fit(features) if self.standardize else None
        if self.scaler_ is not None:
            features = self.scaler_.transform(features)
        rng = np.random.default_rng(self.seed)
        self._initialise(features.shape[1], rng)

        n_rows = features.shape[0]
        first_moment = [np.zeros_like(w) for w in self.weights_]
        second_moment = [np.zeros_like(w) for w in self.weights_]
        first_moment_b = [np.zeros_like(b) for b in self.biases_]
        second_moment_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, epsilon = 0.9, 0.999, 1e-8

        for epoch in range(1, self.n_epochs + 1):
            activations, probabilities = self._forward(features)
            # Binary cross-entropy gradient at the sigmoid output.
            delta = (probabilities - labels)[:, None] / n_rows
            gradients_w: list[np.ndarray] = [np.empty(0)] * len(self.weights_)
            gradients_b: list[np.ndarray] = [np.empty(0)] * len(self.biases_)
            for layer in reversed(range(len(self.weights_))):
                gradients_w[layer] = (
                    activations[layer].T @ delta + self.l2_penalty * self.weights_[layer]
                )
                gradients_b[layer] = delta.sum(axis=0)
                if layer > 0:
                    upstream = delta @ self.weights_[layer].T
                    delta = upstream * (1.0 - activations[layer] ** 2)
            for layer in range(len(self.weights_)):
                for params, grads, m, v in (
                    (self.weights_, gradients_w, first_moment, second_moment),
                    (self.biases_, gradients_b, first_moment_b, second_moment_b),
                ):
                    m[layer] = beta1 * m[layer] + (1.0 - beta1) * grads[layer]
                    v[layer] = beta2 * v[layer] + (1.0 - beta2) * grads[layer] ** 2
                    m_hat = m[layer] / (1.0 - beta1**epoch)
                    v_hat = v[layer] / (1.0 - beta2**epoch)
                    params[layer] -= self.learning_rate * m_hat / (np.sqrt(v_hat) + epsilon)
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        if self.scaler_ is not None:
            features = self.scaler_.transform(features)
        _, probabilities = self._forward(features)
        return probabilities
