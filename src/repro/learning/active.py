"""Uncertainty-sampling active learning.

Section 3.2 of the paper augments the classifier's training data by labelling
the objects the current classifier is most uncertain about (score closest to
0.5).  One augmentation/retraining round is recommended in practice; the
helpers here support any number of rounds and also back the Figure 1
decision-boundary illustration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learning.base import Classifier, check_features, check_labels
from repro.sampling.rng import SeedLike, as_index_array, resolve_rng, sample_without_replacement


def uncertainty_ranking(scores: np.ndarray) -> np.ndarray:
    """Order objects by how close their score is to the 0.5 toss-up point.

    Returns indices into ``scores`` sorted from most to least uncertain.
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    return np.argsort(np.abs(scores - 0.5), kind="stable")


@dataclass
class ActiveLearningResult:
    """Outcome of one or more uncertainty-sampling augmentation rounds.

    Attributes:
        classifier: the final retrained classifier.
        labelled_indices: all object indices labelled so far (initial sample
            plus every augmentation batch), in labelling order.
        labels: the predicate outcomes for ``labelled_indices``.
        rounds: number of augmentation rounds performed.
        history: per-round record of which indices were added.
    """

    classifier: Classifier
    labelled_indices: np.ndarray
    labels: np.ndarray
    rounds: int
    history: list[np.ndarray]


def augment_training_set(
    classifier: Classifier,
    features: np.ndarray,
    candidate_indices: np.ndarray,
    labelled_indices: np.ndarray,
    labels: np.ndarray,
    oracle,
    batch_size: int,
    rounds: int = 1,
    pool_size: int | None = 4096,
    seed: SeedLike = None,
) -> ActiveLearningResult:
    """Run uncertainty-sampling augmentation rounds and retrain.

    Args:
        classifier: an (already fitted or unfitted) classifier; it is
            re-fitted from scratch on the growing labelled set each round.
        features: feature matrix for the whole object set.
        candidate_indices: indices eligible for labelling (typically
            ``O \\ S0``).
        labelled_indices: indices labelled so far.
        labels: labels aligned with ``labelled_indices``.
        oracle: expensive predicate, called on each newly selected batch.
        batch_size: number of objects labelled per round.
        rounds: number of augmentation rounds (the paper recommends one).
        pool_size: evaluate the scoring function on a random pool of at most
            this many candidates instead of all of them, as the paper does;
            ``None`` scores every candidate.
        seed: RNG seed or generator.
    """
    features = check_features(features)
    candidate_indices = as_index_array(candidate_indices)
    labelled_indices = as_index_array(labelled_indices)
    labels = check_labels(labels, labelled_indices.size)
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    rng = resolve_rng(seed)

    model = classifier.clone()
    model.fit(features[labelled_indices], labels)
    remaining = np.setdiff1d(candidate_indices, labelled_indices, assume_unique=False)
    history: list[np.ndarray] = []

    for _ in range(rounds):
        if remaining.size == 0:
            break
        if pool_size is not None and remaining.size > pool_size:
            pool = sample_without_replacement(remaining, pool_size, seed=rng)
        else:
            pool = remaining
        scores = model.predict_scores(features[pool])
        take = min(batch_size, pool.size)
        selected = pool[uncertainty_ranking(scores)[:take]]
        new_labels = np.asarray(oracle(selected), dtype=np.float64)
        labelled_indices = np.concatenate([labelled_indices, selected])
        labels = np.concatenate([labels, new_labels])
        remaining = np.setdiff1d(remaining, selected, assume_unique=False)
        history.append(selected)
        if np.unique(labels).size >= 2:
            model = classifier.clone()
            model.fit(features[labelled_indices], labels)

    return ActiveLearningResult(
        classifier=model,
        labelled_indices=labelled_indices,
        labels=labels,
        rounds=len(history),
        history=history,
    )
