"""Classification metrics.

Quantification learning's Adjusted Count estimator (eq. 2) requires
cross-validated true- and false-positive-rate estimates, and the experiment
harness reports classifier accuracy/AUC to explain why a given sampling
design worked well or poorly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.learning.base import check_labels


def confusion_matrix(true_labels: np.ndarray, predicted_labels: np.ndarray) -> np.ndarray:
    """Return the 2x2 confusion matrix ``[[tn, fp], [fn, tp]]``."""
    true_labels = check_labels(true_labels)
    predicted_labels = check_labels(predicted_labels, true_labels.size)
    tp = float(np.sum((true_labels == 1) & (predicted_labels == 1)))
    tn = float(np.sum((true_labels == 0) & (predicted_labels == 0)))
    fp = float(np.sum((true_labels == 0) & (predicted_labels == 1)))
    fn = float(np.sum((true_labels == 1) & (predicted_labels == 0)))
    return np.array([[tn, fp], [fn, tp]])


def accuracy(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """Fraction of correct predictions."""
    true_labels = check_labels(true_labels)
    predicted_labels = check_labels(predicted_labels, true_labels.size)
    return float(np.mean(true_labels == predicted_labels))


def true_positive_rate(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """TPR (recall): fraction of actual positives predicted positive.

    Returns 0.0 when there are no actual positives, which is the convention
    used by the Adjusted Count estimator (the adjustment then falls back to
    the raw observed count).
    """
    matrix = confusion_matrix(true_labels, predicted_labels)
    actual_positives = matrix[1].sum()
    if actual_positives == 0:
        return 0.0
    return float(matrix[1, 1] / actual_positives)


def false_positive_rate(true_labels: np.ndarray, predicted_labels: np.ndarray) -> float:
    """FPR: fraction of actual negatives predicted positive."""
    matrix = confusion_matrix(true_labels, predicted_labels)
    actual_negatives = matrix[0].sum()
    if actual_negatives == 0:
        return 0.0
    return float(matrix[0, 1] / actual_negatives)


def roc_auc(true_labels: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve via the rank statistic.

    Equivalent to the probability that a random positive receives a higher
    score than a random negative (ties count one half).  Returns 0.5 when the
    labels are single-class, matching the "no information" convention.
    """
    true_labels = check_labels(true_labels)
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.size != true_labels.size:
        raise ValueError("scores and labels must be aligned")
    positives = int(true_labels.sum())
    negatives = true_labels.size - positives
    if positives == 0 or negatives == 0:
        return 0.5
    # Midranks handle ties exactly.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    position = 0
    while position < scores.size:
        tie_end = position
        while tie_end + 1 < scores.size and sorted_scores[tie_end + 1] == sorted_scores[position]:
            tie_end += 1
        ranks[order[position : tie_end + 1]] = (position + tie_end) / 2.0 + 1.0
        position = tie_end + 1
    positive_rank_sum = ranks[true_labels == 1].sum()
    return float(
        (positive_rank_sum - positives * (positives + 1) / 2.0) / (positives * negatives)
    )


@dataclass(frozen=True)
class ClassificationReport:
    """Summary of a classifier's performance on a labelled set."""

    accuracy: float
    true_positive_rate: float
    false_positive_rate: float
    auc: float
    positives: int
    negatives: int

    @classmethod
    def from_scores(
        cls,
        true_labels: np.ndarray,
        scores: np.ndarray,
        threshold: float = 0.5,
    ) -> "ClassificationReport":
        true_labels = check_labels(true_labels)
        scores = np.asarray(scores, dtype=np.float64).ravel()
        predictions = (scores >= threshold).astype(np.float64)
        return cls(
            accuracy=accuracy(true_labels, predictions),
            true_positive_rate=true_positive_rate(true_labels, predictions),
            false_positive_rate=false_positive_rate(true_labels, predictions),
            auc=roc_auc(true_labels, scores),
            positives=int(true_labels.sum()),
            negatives=int(true_labels.size - true_labels.sum()),
        )
