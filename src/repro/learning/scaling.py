"""Feature standardisation."""

from __future__ import annotations

import numpy as np

from repro.learning.base import check_features


class StandardScaler:
    """Standardise features to zero mean and unit variance.

    Distance-based learners (kNN) and gradient-based learners (logistic
    regression, the neural network) are sensitive to feature scales; this
    scaler is applied internally by those learners so callers can hand in raw
    attribute values.
    """

    def fit(self, features: np.ndarray) -> "StandardScaler":
        features = check_features(features)
        self.mean_ = features.mean(axis=0)
        scale = features.std(axis=0)
        # Constant columns would otherwise divide by zero; they carry no
        # information, so map them to zero instead.
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if not hasattr(self, "mean_"):
            raise RuntimeError("StandardScaler must be fitted before transform")
        features = check_features(features)
        if features.shape[1] != self.mean_.size:
            raise ValueError(
                f"expected {self.mean_.size} features, got {features.shape[1]}"
            )
        return (features - self.mean_) / self.scale_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)
