"""CART decision-tree classifier.

The random forest of :mod:`repro.learning.forest` (the paper's default
classifier for LWS/LSS/QL) is an ensemble of these trees.  The tree grows
greedily by minimising the weighted Gini impurity of each split; leaf values
are positive fractions, which makes a single tree's score the empirical
positive probability in the leaf.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.learning.base import Classifier, check_features, check_labels


@dataclass
class _TreeNodes:
    """Flat array representation of a fitted tree."""

    feature: list[int] = field(default_factory=list)
    threshold: list[float] = field(default_factory=list)
    left: list[int] = field(default_factory=list)
    right: list[int] = field(default_factory=list)
    value: list[float] = field(default_factory=list)

    def add(self, value: float) -> int:
        """Append a new (leaf) node and return its id."""
        self.feature.append(-1)
        self.threshold.append(np.nan)
        self.left.append(-1)
        self.right.append(-1)
        self.value.append(value)
        return len(self.value) - 1

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "feature": np.asarray(self.feature, dtype=np.int64),
            "threshold": np.asarray(self.threshold, dtype=np.float64),
            "left": np.asarray(self.left, dtype=np.int64),
            "right": np.asarray(self.right, dtype=np.int64),
            "value": np.asarray(self.value, dtype=np.float64),
        }


def _best_split(
    features: np.ndarray,
    labels: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float] | None:
    """Find the (feature, threshold) pair minimising weighted Gini impurity.

    Returns ``None`` when no valid split exists (all candidate features are
    constant or the leaf-size constraint cannot be met).
    """
    n = labels.size
    best_score = np.inf
    best: tuple[int, float, float] | None = None
    for feature in feature_indices:
        column = features[:, feature]
        order = np.argsort(column, kind="stable")
        sorted_values = column[order]
        sorted_labels = labels[order]
        positives_prefix = np.cumsum(sorted_labels)
        total_positives = positives_prefix[-1]

        left_counts = np.arange(1, n)
        right_counts = n - left_counts
        left_positives = positives_prefix[:-1]
        right_positives = total_positives - left_positives

        valid = sorted_values[1:] > sorted_values[:-1]
        valid &= left_counts >= min_samples_leaf
        valid &= right_counts >= min_samples_leaf
        if not valid.any():
            continue

        left_fraction = left_positives / left_counts
        right_fraction = right_positives / right_counts
        gini_left = 2.0 * left_fraction * (1.0 - left_fraction)
        gini_right = 2.0 * right_fraction * (1.0 - right_fraction)
        weighted = (left_counts * gini_left + right_counts * gini_right) / n
        weighted[~valid] = np.inf

        position = int(np.argmin(weighted))
        if weighted[position] < best_score:
            best_score = float(weighted[position])
            threshold = float(
                (sorted_values[position] + sorted_values[position + 1]) / 2.0
            )
            best = (int(feature), threshold, best_score)
    return best


class DecisionTreeClassifier(Classifier):
    """Binary CART classifier with Gini impurity.

    Args:
        max_depth: maximum tree depth (``None`` means unbounded).
        min_samples_split: minimum number of samples required to attempt a
            split.
        min_samples_leaf: minimum number of samples in each child.
        max_features: number of features examined at each split — an int, a
            float fraction, ``"sqrt"``, or ``None`` for all features.  Random
            forests use ``"sqrt"`` to decorrelate their trees.
        seed: RNG seed controlling the per-split feature subsets.
    """

    def __init__(
        self,
        max_depth: int | None = 12,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features: int | float | str | None = None,
        seed: int | None = None,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed

    def _resolve_max_features(self, num_features: int) -> int:
        if self.max_features is None:
            return num_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(num_features)))
        if isinstance(self.max_features, float):
            return max(1, min(num_features, int(round(self.max_features * num_features))))
        return max(1, min(num_features, int(self.max_features)))

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        rng = np.random.default_rng(self.seed)
        num_features = features.shape[1]
        features_per_split = self._resolve_max_features(num_features)
        max_depth = self.max_depth if self.max_depth is not None else np.inf

        nodes = _TreeNodes()
        root = nodes.add(float(labels.mean()))
        # Depth-first growth over (node_id, row_indices, depth) work items.
        stack: list[tuple[int, np.ndarray, int]] = [(root, np.arange(labels.size), 0)]
        while stack:
            node_id, rows, depth = stack.pop()
            node_labels = labels[rows]
            positive_fraction = float(node_labels.mean())
            nodes.value[node_id] = positive_fraction
            is_pure = positive_fraction in (0.0, 1.0)
            if (
                depth >= max_depth
                or rows.size < self.min_samples_split
                or rows.size < 2 * self.min_samples_leaf
                or is_pure
            ):
                continue
            if features_per_split < num_features:
                candidate_features = rng.choice(
                    num_features, size=features_per_split, replace=False
                )
            else:
                candidate_features = np.arange(num_features)
            split = _best_split(
                features[rows], node_labels, candidate_features, self.min_samples_leaf
            )
            if split is None:
                continue
            feature, threshold, _ = split
            goes_left = features[rows, feature] <= threshold
            left_rows = rows[goes_left]
            right_rows = rows[~goes_left]
            if left_rows.size == 0 or right_rows.size == 0:
                continue
            left_id = nodes.add(float(labels[left_rows].mean()))
            right_id = nodes.add(float(labels[right_rows].mean()))
            nodes.feature[node_id] = feature
            nodes.threshold[node_id] = threshold
            nodes.left[node_id] = left_id
            nodes.right[node_id] = right_id
            stack.append((left_id, left_rows, depth + 1))
            stack.append((right_id, right_rows, depth + 1))

        self.nodes_ = nodes.as_arrays()
        self.num_features_ = num_features
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        if features.shape[1] != self.num_features_:
            raise ValueError(
                f"expected {self.num_features_} features, got {features.shape[1]}"
            )
        nodes = self.nodes_
        assignments = np.zeros(features.shape[0], dtype=np.int64)
        # Route all rows level by level; internal nodes send rows to a child,
        # leaves keep them.  Terminates because children always have larger
        # ids than their parents.
        active = nodes["feature"][assignments] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            node_ids = assignments[rows]
            feature = nodes["feature"][node_ids]
            threshold = nodes["threshold"][node_ids]
            goes_left = features[rows, feature] <= threshold
            assignments[rows] = np.where(
                goes_left, nodes["left"][node_ids], nodes["right"][node_ids]
            )
            active = nodes["feature"][assignments] >= 0
        return nodes["value"][assignments]

    @property
    def node_count(self) -> int:
        """Number of nodes in the fitted tree."""
        self._require_fitted()
        return int(self.nodes_["value"].size)
