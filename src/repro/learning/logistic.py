"""L2-regularised logistic regression trained by gradient descent."""

from __future__ import annotations

import numpy as np

from repro.learning.base import Classifier, check_features, check_labels
from repro.learning.scaling import StandardScaler


def _sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegressionClassifier(Classifier):
    """Binary logistic regression.

    A simple, well-calibrated linear baseline: its score is a genuine
    posterior probability estimate, which makes it a useful contrast with
    the tree ensembles when studying how score quality affects LWS and LSS.

    Args:
        learning_rate: gradient-descent step size.
        n_iterations: number of full-batch gradient steps.
        l2_penalty: L2 regularisation strength (applied to weights, not the
            intercept).
        standardize: whether to standardise features internally.
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        n_iterations: int = 400,
        l2_penalty: float = 1e-3,
        standardize: bool = True,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if n_iterations <= 0:
            raise ValueError("n_iterations must be positive")
        if l2_penalty < 0:
            raise ValueError("l2_penalty must be non-negative")
        self.learning_rate = learning_rate
        self.n_iterations = n_iterations
        self.l2_penalty = l2_penalty
        self.standardize = standardize

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticRegressionClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        self.scaler_ = StandardScaler().fit(features) if self.standardize else None
        if self.scaler_ is not None:
            features = self.scaler_.transform(features)

        n_rows, n_features = features.shape
        weights = np.zeros(n_features)
        intercept = 0.0
        for _ in range(self.n_iterations):
            logits = features @ weights + intercept
            probabilities = _sigmoid(logits)
            error = probabilities - labels
            gradient_w = features.T @ error / n_rows + self.l2_penalty * weights
            gradient_b = float(error.mean())
            weights -= self.learning_rate * gradient_w
            intercept -= self.learning_rate * gradient_b
        self.weights_ = weights
        self.intercept_ = intercept
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        if self.scaler_ is not None:
            features = self.scaler_.transform(features)
        return _sigmoid(features @ self.weights_ + self.intercept_)
