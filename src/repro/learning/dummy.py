"""Degenerate classifiers used as worst-case baselines.

Figure 6 of the paper evaluates LSS with a "Random" classifier that emits
arbitrary random probabilities — the worst case for a learned sampling
design, because the score-induced ordering carries no information about the
labels.  :class:`RandomScoreClassifier` reproduces it; the complementary
:class:`MajorityClassifier` always outputs the training majority class with
full confidence, which stresses the opposite failure mode (an over-confident
but uninformative classifier).
"""

from __future__ import annotations

import numpy as np

from repro.learning.base import Classifier, check_features, check_labels


class RandomScoreClassifier(Classifier):
    """Classifier that produces uniformly random scores.

    The scores are drawn from ``U[0, 1]`` independently of the features, so
    any sampling design derived from them degrades to (roughly) simple
    random behaviour — exactly the robustness scenario the paper tests.
    """

    # Each call advances ``rng_``, so chunked scoring cannot reproduce the
    # serial stream.
    deterministic_scores = False

    def __init__(self, seed: int | None = 0) -> None:
        self.seed = seed

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomScoreClassifier":
        features = check_features(features)
        check_labels(labels, features.shape[0])
        self.rng_ = np.random.default_rng(self.seed)
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        return self.rng_.uniform(0.0, 1.0, size=features.shape[0])


class MajorityClassifier(Classifier):
    """Classifier that confidently predicts the training majority class."""

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MajorityClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        self.majority_ = float(labels.mean() >= 0.5)
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        return np.full(features.shape[0], self.majority_, dtype=np.float64)
