"""Dependency-free classifier library used by the learn-to-sample methods.

The paper uses scikit-learn's classifiers out of the box; since the methods
only require a scoring function ``g : O -> [0, 1]`` reflecting the
classifier's confidence, this package provides small numpy implementations of
the same algorithms (kNN, random forest, a two-layer neural network) plus the
supporting machinery: feature scaling, classification metrics, k-fold cross
validation, and uncertainty-sampling active learning.
"""

from repro.learning.active import ActiveLearningResult, augment_training_set, uncertainty_ranking
from repro.learning.base import Classifier, check_features, check_labels
from repro.learning.dummy import MajorityClassifier, RandomScoreClassifier
from repro.learning.forest import RandomForestClassifier
from repro.learning.knn import KNeighborsClassifier
from repro.learning.logistic import LogisticRegressionClassifier
from repro.learning.metrics import (
    ClassificationReport,
    accuracy,
    confusion_matrix,
    false_positive_rate,
    roc_auc,
    true_positive_rate,
)
from repro.learning.model_selection import (
    KFold,
    cross_validated_rates,
    cross_validated_scores,
    train_test_split,
)
from repro.learning.neural import NeuralNetworkClassifier
from repro.learning.scaling import StandardScaler
from repro.learning.tree import DecisionTreeClassifier

__all__ = [
    "ActiveLearningResult",
    "Classifier",
    "ClassificationReport",
    "DecisionTreeClassifier",
    "KFold",
    "KNeighborsClassifier",
    "LogisticRegressionClassifier",
    "MajorityClassifier",
    "NeuralNetworkClassifier",
    "RandomForestClassifier",
    "RandomScoreClassifier",
    "StandardScaler",
    "accuracy",
    "augment_training_set",
    "check_features",
    "check_labels",
    "confusion_matrix",
    "cross_validated_rates",
    "cross_validated_scores",
    "false_positive_rate",
    "roc_auc",
    "train_test_split",
    "true_positive_rate",
    "uncertainty_ranking",
]
