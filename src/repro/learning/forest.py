"""Random-forest classifier.

The paper's default classifier (``n_estimators=100`` in the experiments).
The forest score is the average of its trees' leaf positive fractions, which
the paper notes can be read as the probability that ``q(o) = 1``.
"""

from __future__ import annotations

import numpy as np

from repro.learning.base import Classifier, check_features, check_labels
from repro.learning.tree import DecisionTreeClassifier


class RandomForestClassifier(Classifier):
    """Bagged ensemble of CART trees with per-split feature sub-sampling.

    Args:
        n_estimators: number of trees.
        max_depth: depth limit applied to every tree.
        min_samples_leaf: minimum samples per leaf in every tree.
        max_features: per-split feature budget (defaults to ``"sqrt"``).
        bootstrap: whether each tree is trained on a bootstrap resample.
        seed: master RNG seed; each tree receives an independent child seed.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int | None = 12,
        min_samples_leaf: int = 2,
        max_features: int | float | str | None = "sqrt",
        bootstrap: bool = True,
        seed: int | None = None,
    ) -> None:
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "RandomForestClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        rng = np.random.default_rng(self.seed)
        n_rows = features.shape[0]

        trees: list[DecisionTreeClassifier] = []
        for _ in range(self.n_estimators):
            tree_seed = int(rng.integers(0, 2**31 - 1))
            if self.bootstrap:
                rows = rng.integers(0, n_rows, size=n_rows)
            else:
                rows = np.arange(n_rows)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=tree_seed,
            )
            tree.fit(features[rows], labels[rows])
            trees.append(tree)
        self.trees_ = trees
        self.num_features_ = features.shape[1]
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        scores = np.zeros(features.shape[0], dtype=np.float64)
        for tree in self.trees_:
            scores += tree.predict_scores(features)
        return scores / len(self.trees_)
