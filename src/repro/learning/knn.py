"""k-nearest-neighbour classifier.

The paper uses kNN both as one of the classifiers driving LSS (Figure 6) and
as the illustrative classifier for active learning (Figure 1).  The score is
the fraction of positive labels among the k nearest training points, which is
a natural confidence measure in ``[0, 1]``.
"""

from __future__ import annotations

import numpy as np

from repro.learning.base import Classifier, check_features, check_labels
from repro.learning.scaling import StandardScaler


class KNeighborsClassifier(Classifier):
    """Brute-force k-nearest-neighbour classifier.

    Args:
        n_neighbors: number of neighbours to vote over.
        standardize: whether to standardise features before computing
            distances (recommended when attributes have different scales).
        chunk_size: number of query rows scored per distance-matrix block;
            bounds memory when scoring large object sets.
    """

    def __init__(
        self,
        n_neighbors: int = 15,
        standardize: bool = True,
        chunk_size: int = 2048,
    ) -> None:
        if n_neighbors <= 0:
            raise ValueError("n_neighbors must be positive")
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.n_neighbors = n_neighbors
        self.standardize = standardize
        self.chunk_size = chunk_size

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KNeighborsClassifier":
        features = check_features(features)
        labels = check_labels(labels, features.shape[0])
        self.scaler_ = StandardScaler().fit(features) if self.standardize else None
        self.train_features_ = (
            self.scaler_.transform(features) if self.scaler_ is not None else features
        )
        self.train_labels_ = labels
        self.effective_neighbors_ = min(self.n_neighbors, labels.size)
        return self

    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted()
        features = check_features(features)
        if self.scaler_ is not None:
            features = self.scaler_.transform(features)
        train = self.train_features_
        labels = self.train_labels_
        k = self.effective_neighbors_
        train_sq = np.einsum("ij,ij->i", train, train)

        scores = np.empty(features.shape[0], dtype=np.float64)
        for start in range(0, features.shape[0], self.chunk_size):
            block = features[start : start + self.chunk_size]
            # Squared Euclidean distances via the expansion ||a-b||² =
            # ||a||² - 2a·b + ||b||²; the ||a||² term is constant per row and
            # does not affect the neighbour ranking, so it is omitted.
            distances = -2.0 * block @ train.T + train_sq
            if k < labels.size:
                neighbour_idx = np.argpartition(distances, k - 1, axis=1)[:, :k]
            else:
                neighbour_idx = np.broadcast_to(
                    np.arange(labels.size), (block.shape[0], labels.size)
                )
            scores[start : start + block.shape[0]] = labels[neighbour_idx].mean(axis=1)
        return scores
