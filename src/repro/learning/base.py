"""Classifier interface shared by every learner in the library.

Learn-to-sample only needs two things from a classifier: it can be fitted on
a labelled sample, and it produces a confidence score ``g(o) ∈ [0, 1]`` for
each object (1 = confidently positive, 0 = confidently negative, 0.5 = a
toss-up).  :class:`Classifier` fixes that contract; all concrete learners in
this package implement it.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod

import numpy as np


def check_features(features: np.ndarray) -> np.ndarray:
    """Validate and normalise a feature matrix to 2-d float64."""
    array = np.asarray(features, dtype=np.float64)
    if array.ndim == 1:
        array = array[:, None]
    if array.ndim != 2:
        raise ValueError(f"features must be a 2-d array, got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValueError("features must contain at least one row")
    if not np.all(np.isfinite(array)):
        raise ValueError("features must be finite")
    return array


def check_labels(labels: np.ndarray, num_rows: int | None = None) -> np.ndarray:
    """Validate binary labels and normalise them to a float64 0/1 vector."""
    array = np.asarray(labels, dtype=np.float64).ravel()
    if num_rows is not None and array.size != num_rows:
        raise ValueError(f"expected {num_rows} labels, got {array.size}")
    unique = np.unique(array)
    if not np.all(np.isin(unique, [0.0, 1.0])):
        raise ValueError(f"labels must be binary (0/1), got values {unique}")
    return array


class Classifier(ABC):
    """Abstract binary classifier with a confidence score.

    Concrete learners store their hyper-parameters in ``__init__`` and their
    fitted state in attributes with a trailing underscore, mirroring the
    scikit-learn convention so that the rest of the code base reads
    naturally.
    """

    #: Whether ``predict_scores`` is a pure function of the fitted state —
    #: true for every real learner.  Classifiers that consume internal RNG
    #: state per call (the random baseline) set this to False so batch
    #: helpers know row-chunked scoring would not reproduce the serial
    #: stream.
    deterministic_scores: bool = True

    @abstractmethod
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "Classifier":
        """Fit the classifier on a labelled sample and return ``self``."""

    @abstractmethod
    def predict_scores(self, features: np.ndarray) -> np.ndarray:
        """Return the scoring function ``g`` evaluated on each row.

        Scores lie in ``[0, 1]``; larger means more confidently positive.
        """

    def predict(self, features: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Return hard 0/1 predictions by thresholding the scores."""
        return (self.predict_scores(features) >= threshold).astype(np.float64)

    def clone(self) -> "Classifier":
        """Return an unfitted copy with identical hyper-parameters."""
        fresh = copy.deepcopy(self)
        for attribute in list(vars(fresh)):
            if attribute.endswith("_") and not attribute.endswith("__"):
                delattr(fresh, attribute)
        return fresh

    @property
    def is_fitted(self) -> bool:
        """Whether ``fit`` has been called successfully."""
        return any(
            name.endswith("_") and not name.endswith("__") for name in vars(self)
        )

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before predicting")
