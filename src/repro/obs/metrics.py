"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Zero-dependency by design (stdlib only) so it can be imported by every layer
— kernels, backends, warm-pool workers — without dragging numpy into the
observability path.  Three requirements shaped the API:

* **Determinism safety.**  Recording a metric can never perturb an estimate:
  values come from ``time.perf_counter()`` and plain integer accounting, and
  the registry is only *written* when :func:`repro.obs.trace.enabled` says
  so at the call site.
* **Mergeability.**  Warm-pool workers run in separate processes; a worker
  snapshots its registry (:meth:`MetricsRegistry.snapshot`, plain picklable
  dicts) and ships it back with the chunk results, and the parent folds it
  in with :meth:`MetricsRegistry.merge` — counters and histogram buckets
  add, gauges are last-write-wins.
* **Stable output.**  ``as_dict`` / the Prometheus exposition sort metric
  names and label sets so goldens and diffs are reproducible.

Histograms use fixed exponential second-scale buckets (sub-millisecond to
tens of seconds) and derive p50/p95/p99 by linear interpolation inside the
winning bucket — the standard fixed-bucket estimate, cheap and mergeable.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, Mapping, Tuple

LabelKey = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelKey]

#: Default histogram buckets (upper bounds, seconds / generic magnitudes).
#: The final implicit bucket is +Inf.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

# Metric names used by the built-in instrumentation; collected here so call
# sites, exporters, and tests agree on spelling.
ORACLE_CALLS = "repro_oracle_calls_total"
PREDICATE_BATCH_ROWS = "repro_predicate_batch_rows"
BACKEND_ROWS_SCANNED = "repro_backend_rows_scanned_total"
SQL_ROUNDTRIPS = "repro_sql_roundtrips_total"
SQL_STAGE_QUERIES = "repro_sql_stage_queries_total"
STAGE_SECONDS = "repro_stage_seconds"
TRIALS_TOTAL = "repro_trials_total"
TRIAL_SECONDS = "repro_trial_seconds"
POOL_CHUNKS = "repro_pool_chunks_total"
POOL_CHUNK_TRIALS = "repro_pool_chunk_trials"
POOL_DISPATCH_SECONDS = "repro_pool_dispatch_seconds"
POOL_QUEUE_WAIT_SECONDS = "repro_pool_queue_wait_seconds"
HTTP_REQUEST_SECONDS = "repro_http_request_seconds"
DESIGN_CACHE_REQUESTS = "repro_design_cache_requests_total"
FAULTS_INJECTED = "repro_faults_injected_total"
CHUNK_RETRIES = "repro_chunk_retries_total"
POOL_REBUILDS = "repro_pool_rebuilds_total"
REQUESTS_SHED = "repro_requests_shed_total"
REQUEST_DEADLINES = "repro_request_deadline_total"
RETRY_BACKOFF_SECONDS = "repro_client_retry_backoff_seconds"
LOCK_RETRIES = "repro_lock_retries_total"
ORACLE_RETRIES = "repro_oracle_retries_total"


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Histogram:
    """Fixed-bucket histogram: cumulative-free bucket counts + sum + count."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        # One count per finite bucket plus the +Inf overflow bucket.
        self.counts = [0] * (len(buckets) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.total += value
        self.count += 1

    def percentile(self, q: float) -> float:
        """Interpolated percentile (0 < q < 1) from the bucket counts."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.buckets[index - 1] if index > 0 else 0.0
                if index >= len(self.buckets):
                    # +Inf bucket: the best estimate is the largest finite bound.
                    return self.buckets[-1]
                upper = self.buckets[index]
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.buckets[-1]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }

    def to_snapshot(self) -> Tuple[Tuple[float, ...], Tuple[int, ...], float, int]:
        return (self.buckets, tuple(self.counts), self.total, self.count)

    def merge_snapshot(
        self, snapshot: Tuple[Tuple[float, ...], Tuple[int, ...], float, int]
    ) -> None:
        buckets, counts, total, count = snapshot
        if tuple(buckets) != self.buckets:
            # Bucket layouts only diverge across versions; re-bucketing is
            # lossy, so adopt the incoming layout wholesale.
            self.buckets = tuple(buckets)
            self.counts = list(counts)
        else:
            for index, value in enumerate(counts):
                self.counts[index] += value
        self.total += total
        self.count += count


class MetricsRegistry:
    """A labeled collection of counters, gauges, and histograms.

    Thread-safe (one lock; every mutation is a few dict operations) and
    fully picklable through :meth:`snapshot`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, _Histogram] = {}

    # -- writes ----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0, **labels: object) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_counter(self, name: str, value: float, **labels: object) -> None:
        """Overwrite a counter (SessionStats-style absolute assignment)."""
        key = (name, _label_key(labels))
        with self._lock:
            self._counters[key] = value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            self._gauges[key] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> None:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(tuple(buckets))
            histogram.observe(value)

    # -- reads -----------------------------------------------------------

    def counter_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._counters.get((name, _label_key(labels)), 0.0)

    def counter_total(self, name: str, **labels: object) -> float:
        """Sum of a counter across label sets matching the given subset.

        With no ``labels`` this sums every label set of the counter; with
        keywords it sums only the sets carrying those exact (key, value)
        pairs — e.g. ``counter_total(SQL_STAGE_QUERIES, backend="sqlite")``
        across whatever stage labels were recorded.
        """
        wanted = set(_label_key(labels))
        with self._lock:
            return sum(
                v
                for (n, key), v in self._counters.items()
                if n == name and wanted.issubset(key)
            )

    def gauge_value(self, name: str, **labels: object) -> float:
        with self._lock:
            return self._gauges.get((name, _label_key(labels)), 0.0)

    def histogram_summary(self, name: str, **labels: object) -> dict:
        with self._lock:
            histogram = self._histograms.get((name, _label_key(labels)))
            if histogram is None:
                return {"count": 0, "sum": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
            return histogram.summary()

    def histogram_sums(self, name: str) -> Dict[LabelKey, float]:
        """Per-label-set sum of observations (stage-seconds breakdowns)."""
        with self._lock:
            return {
                labels: histogram.total
                for (metric, labels), histogram in self._histograms.items()
                if metric == name
            }

    def as_dict(self) -> dict:
        """Deterministically ordered plain-data view (JSON export, goldens)."""
        with self._lock:
            counters = {
                self._format_key(key): value
                for key, value in sorted(self._counters.items())
            }
            gauges = {
                self._format_key(key): value
                for key, value in sorted(self._gauges.items())
            }
            histograms = {
                self._format_key(key): histogram.summary()
                for key, histogram in sorted(self._histograms.items())
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    @staticmethod
    def _format_key(key: MetricKey) -> str:
        name, labels = key
        if not labels:
            return name
        rendered = ",".join(f'{label}="{value}"' for label, value in labels)
        return f"{name}{{{rendered}}}"

    # -- cross-process plumbing -----------------------------------------

    def snapshot(self) -> dict:
        """Picklable copy of the registry state (worker → parent shipping)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: histogram.to_snapshot()
                    for key, histogram in self._histograms.items()
                },
            }

    def merge(self, snapshot: Mapping) -> None:
        """Fold a snapshot in: counters/histograms add, gauges last-write-wins."""
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in snapshot.get("gauges", {}).items():
                self._gauges[key] = value
            for key, histogram_snapshot in snapshot.get("histograms", {}).items():
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = _Histogram(
                        tuple(histogram_snapshot[0])
                    )
                histogram.merge_snapshot(histogram_snapshot)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- iteration for exporters ----------------------------------------

    def iter_counters(self) -> Iterable[Tuple[MetricKey, float]]:
        with self._lock:
            return sorted(self._counters.items())

    def iter_gauges(self) -> Iterable[Tuple[MetricKey, float]]:
        with self._lock:
            return sorted(self._gauges.items())

    def iter_histograms(self) -> Iterable[Tuple[MetricKey, "_Histogram"]]:
        with self._lock:
            return sorted(self._histograms.items())


#: The process-global registry all gated instrumentation writes to.
_GLOBAL = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry used by the built-in instrumentation."""
    return _GLOBAL
