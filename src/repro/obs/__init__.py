"""repro.obs — determinism-safe observability: spans, metrics, exporters.

The subsystem is off by default; enable it with the ``REPRO_OBS``
environment variable or :func:`set_enabled`.  The hard invariant every
instrumentation site honours: **observability on vs. off is byte-identical**
— spans and metrics read monotonic clocks and integer counts only, never
RNG streams, fingerprints, or estimate values (enforced by
``tests/test_obs.py``).

Typical use::

    from repro import obs

    obs.set_enabled(True)
    ... run estimates ...
    print(obs.export.prometheus_text(obs.registry()))
"""

from __future__ import annotations

from repro.obs import export, metrics, trace
from repro.obs.metrics import (
    BACKEND_ROWS_SCANNED,
    CHUNK_RETRIES,
    DESIGN_CACHE_REQUESTS,
    FAULTS_INJECTED,
    HTTP_REQUEST_SECONDS,
    LOCK_RETRIES,
    ORACLE_CALLS,
    ORACLE_RETRIES,
    POOL_CHUNK_TRIALS,
    POOL_CHUNKS,
    POOL_DISPATCH_SECONDS,
    POOL_QUEUE_WAIT_SECONDS,
    POOL_REBUILDS,
    PREDICATE_BATCH_ROWS,
    REQUEST_DEADLINES,
    REQUESTS_SHED,
    RETRY_BACKOFF_SECONDS,
    SQL_ROUNDTRIPS,
    SQL_STAGE_QUERIES,
    STAGE_SECONDS,
    TRIAL_SECONDS,
    TRIALS_TOTAL,
    MetricsRegistry,
    registry,
)
from repro.obs.trace import (
    Span,
    clear_traces,
    current_span,
    current_span_name,
    enabled,
    recent_traces,
    set_enabled,
    span,
    stage,
)

__all__ = [
    "BACKEND_ROWS_SCANNED",
    "CHUNK_RETRIES",
    "DESIGN_CACHE_REQUESTS",
    "FAULTS_INJECTED",
    "HTTP_REQUEST_SECONDS",
    "LOCK_RETRIES",
    "MetricsRegistry",
    "ORACLE_CALLS",
    "ORACLE_RETRIES",
    "POOL_CHUNKS",
    "POOL_CHUNK_TRIALS",
    "POOL_DISPATCH_SECONDS",
    "POOL_QUEUE_WAIT_SECONDS",
    "POOL_REBUILDS",
    "PREDICATE_BATCH_ROWS",
    "REQUESTS_SHED",
    "REQUEST_DEADLINES",
    "RETRY_BACKOFF_SECONDS",
    "SQL_ROUNDTRIPS",
    "SQL_STAGE_QUERIES",
    "STAGE_SECONDS",
    "Span",
    "TRIALS_TOTAL",
    "TRIAL_SECONDS",
    "clear_traces",
    "current_span",
    "current_span_name",
    "enabled",
    "export",
    "metrics",
    "recent_traces",
    "record_oracle_calls",
    "record_rows_scanned",
    "record_stage_query",
    "registry",
    "reset",
    "set_enabled",
    "span",
    "stage",
    "trace",
]


def reset() -> None:
    """Clear the global registry and the retained traces (tests, benchmarks)."""
    registry().reset()
    clear_traces()


def record_oracle_calls(batch_size: int) -> None:
    """Unified oracle-call accounting, attributed to the active stage span.

    Called from ``CountingQuery.evaluate`` when observability is enabled:
    one counter increment per predicate evaluation plus a batch-size
    histogram observation — the paper's central cost currency, now visible
    per learning/pilot/stage-II stage.
    """
    stage_name = current_span_name() or "unattributed"
    reg = registry()
    reg.inc(ORACLE_CALLS, float(batch_size), stage=stage_name)
    reg.observe(
        PREDICATE_BATCH_ROWS,
        float(batch_size),
        buckets=(1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0),
        stage=stage_name,
    )


def record_rows_scanned(rows: int, backend: str) -> None:
    """Backend-level scan accounting (rows touched to answer predicates)."""
    registry().inc(BACKEND_ROWS_SCANNED, float(rows), backend=backend)


def record_stage_query(backend: str) -> None:
    """One pushed-down estimator stage answered by one aggregate SQL query.

    Attributed to the active stage span (``lws.sampling``, ``lss.pilot``,
    ``lss.stage2``) so the parity/pushdown tests can assert the hard claim
    of pushdown v2: under ``pushdown=full``, each estimator stage costs
    exactly one SQL round trip instead of per-row probe batches.
    """
    registry().inc(
        SQL_STAGE_QUERIES, backend=backend, stage=current_span_name() or "unattributed"
    )
