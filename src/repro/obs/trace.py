"""Hierarchical tracing spans with a determinism-safe, near-free off switch.

The whole subsystem is built around one invariant inherited from every layer
of this repository: **observability on vs. off is byte-identical**.  Spans
therefore touch only ``time.perf_counter()``, plain dicts and lists — never
RNG streams, never estimate values — and the disabled fast path costs a
single module-global attribute check before returning a shared no-op
singleton, so estimator hot loops can be instrumented unconditionally.

Spans nest through a :mod:`contextvars` stack, which makes them correct both
on the estimate server's executor threads and inside asyncio handlers:

    with span("lss.design", optimizer="dynpgm"):
        ...

Completed root spans are kept in a bounded ring buffer for export
(:mod:`repro.obs.export`); a long-running service never accumulates
unbounded trace state.

Enablement comes from the ``REPRO_OBS`` environment variable at import time
and can be flipped at runtime with :func:`set_enabled` (tests, benchmarks,
warm-pool workers).
"""

from __future__ import annotations

import collections
import contextvars
import os
import time
from typing import Deque, Iterator

#: Metric names shared with the instrumentation call sites.
STAGE_SECONDS = "repro_stage_seconds"

#: Completed root spans retained for export (bounded: a resident service
#: must not grow trace state without bound).
_TRACE_BUFFER_LIMIT = 256

_FALSEY = ("", "0", "false", "no", "off")

_enabled: bool = os.environ.get("REPRO_OBS", "").strip().lower() not in _FALSEY

#: The innermost active span of the current thread/task (contextvar, so
#: executor threads and asyncio tasks each see their own stack).
_ACTIVE: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_active_span", default=None
)

_FINISHED_ROOTS: Deque["Span"] = collections.deque(maxlen=_TRACE_BUFFER_LIMIT)


def enabled() -> bool:
    """Whether instrumentation records anything at all (the one hot check)."""
    return _enabled


def set_enabled(value: bool) -> bool:
    """Flip instrumentation on/off; returns the previous state."""
    global _enabled
    previous = _enabled
    _enabled = bool(value)
    return previous


class Span:
    """One timed, named region of work; nests into a tree via the context stack.

    Timing uses the monotonic :func:`time.perf_counter` only — a span can
    never perturb seeded randomness or estimate bytes, whatever it wraps.
    """

    __slots__ = ("name", "attributes", "children", "started_at", "duration_seconds",
                 "_parent", "_token", "_observe_stage")

    def __init__(self, name: str, attributes: dict | None = None,
                 observe_stage: bool = False) -> None:
        self.name = name
        self.attributes = attributes or {}
        self.children: list[Span] = []
        self.started_at = 0.0
        self.duration_seconds = 0.0
        self._parent: Span | None = None
        self._token: contextvars.Token | None = None
        self._observe_stage = observe_stage

    def __enter__(self) -> "Span":
        self._parent = _ACTIVE.get()
        self._token = _ACTIVE.set(self)
        self.started_at = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.duration_seconds = time.perf_counter() - self.started_at
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        if self._parent is not None:
            self._parent.children.append(self)
        else:
            _FINISHED_ROOTS.append(self)
        if self._observe_stage:
            from repro.obs.metrics import registry

            registry().observe(STAGE_SECONDS, self.duration_seconds, stage=self.name)

    def to_dict(self) -> dict:
        """Plain-data form of the span tree (JSON export)."""
        payload: dict = {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Span({self.name!r}, {self.duration_seconds:.6f}s, {len(self.children)} children)"


class _NoopSpan:
    """The shared disabled-path span: every call site gets this singleton."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP = _NoopSpan()


def span(name: str, **attributes: object) -> "Span | _NoopSpan":
    """A trace-only span (no metrics side effects beyond the trace tree)."""
    if not _enabled:
        return _NOOP
    return Span(name, attributes or None)


def stage(name: str, **attributes: object) -> "Span | _NoopSpan":
    """A span that also feeds the ``repro_stage_seconds`` histogram on exit.

    Used at estimator level for the *non-overlapping* per-stage regions
    (learning / scoring / pilot / design / stage-II), so summing the
    histogram per stage label yields an additive breakdown — inner detail
    spans use :func:`span` and stay out of the stage accounting.
    """
    if not _enabled:
        return _NOOP
    return Span(name, attributes or None, observe_stage=True)


def current_span() -> "Span | None":
    """The innermost active span of this thread/task (``None`` when disabled)."""
    if not _enabled:
        return None
    return _ACTIVE.get()


def current_span_name() -> "str | None":
    """Name of the innermost active span, for metric stage attribution."""
    active = current_span()
    return active.name if active is not None else None


def recent_traces() -> list[Span]:
    """Completed root spans, oldest first (bounded ring buffer)."""
    return list(_FINISHED_ROOTS)


def clear_traces() -> None:
    """Drop the retained root spans (tests, export rotation)."""
    _FINISHED_ROOTS.clear()


def iter_spans(root: Span) -> Iterator[Span]:
    """Depth-first iteration over a span tree."""
    yield root
    for child in root.children:
        yield from iter_spans(child)
