"""Exporters for the observability subsystem.

Two formats, both deterministic given the same registry contents:

* :func:`prometheus_text` — Prometheus text exposition (``# TYPE`` headers,
  ``_bucket``/``_sum``/``_count`` histogram series) served by the estimate
  server's ``GET /metrics`` endpoint and pinned by a golden test.
* :func:`dump_json` / :func:`to_json_dict` — a JSON document bundling the
  recent span trees with a metrics summary, written by the service smoke's
  ``--trace-out`` flag and uploaded as a CI artifact.

Plus :func:`stage_totals`, the small helper the benchmark drivers use to
turn the ``repro_stage_seconds`` histogram into per-stage second sums for
the tracked BENCH breakdowns.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Dict, Iterable, Mapping

from repro.obs import trace
from repro.obs.metrics import STAGE_SECONDS, MetricsRegistry

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    return _NAME_SANITIZER.sub("_", name)


def _format_value(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_labels(labels, extra: str = "") -> str:
    parts = [f'{_sanitize(label)}="{value}"' for label, value in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def prometheus_text(*registries: MetricsRegistry) -> str:
    """Prometheus text exposition of one or more registries, merged.

    Multiple registries (the gated global one plus a session's always-on
    stats registry) are folded into a scratch registry first so overlapping
    series combine with the standard merge semantics.
    """
    if len(registries) == 1:
        combined = registries[0]
    else:
        combined = MetricsRegistry()
        for source in registries:
            combined.merge(source.snapshot())

    lines: list[str] = []
    seen_types: set[str] = set()

    for (name, labels), value in combined.iter_counters():
        metric = _sanitize(name)
        if metric not in seen_types:
            lines.append(f"# TYPE {metric} counter")
            seen_types.add(metric)
        lines.append(f"{metric}{_render_labels(labels)} {_format_value(value)}")

    for (name, labels), value in combined.iter_gauges():
        metric = _sanitize(name)
        if metric not in seen_types:
            lines.append(f"# TYPE {metric} gauge")
            seen_types.add(metric)
        lines.append(f"{metric}{_render_labels(labels)} {_format_value(value)}")

    for (name, labels), histogram in combined.iter_histograms():
        metric = _sanitize(name)
        if metric not in seen_types:
            lines.append(f"# TYPE {metric} histogram")
            seen_types.add(metric)
        cumulative = 0
        for bound, count in zip(histogram.buckets, histogram.counts):
            cumulative += count
            le_label = 'le="' + _format_value(bound) + '"'
            lines.append(
                f"{metric}_bucket{_render_labels(labels, le_label)} {cumulative}"
            )
        cumulative += histogram.counts[-1]
        inf_label = 'le="+Inf"'
        lines.append(
            f"{metric}_bucket{_render_labels(labels, inf_label)} {cumulative}"
        )
        lines.append(f"{metric}_sum{_render_labels(labels)} {repr(histogram.total)}")
        lines.append(f"{metric}_count{_render_labels(labels)} {histogram.count}")

    return "\n".join(lines) + "\n"


def to_json_dict(registry: MetricsRegistry) -> dict:
    """Traces + metrics as one JSON-ready document."""
    return {
        "traces": [span.to_dict() for span in trace.recent_traces()],
        "metrics": registry.as_dict(),
    }


def dump_json(path: "str | pathlib.Path", registry: MetricsRegistry) -> pathlib.Path:
    """Write the trace/metrics document to ``path`` (service smoke artifact)."""
    target = pathlib.Path(path)
    target.write_text(json.dumps(to_json_dict(registry), indent=2, sort_keys=True) + "\n")
    return target


def stage_totals(registry: MetricsRegistry) -> Dict[str, float]:
    """Summed seconds per ``stage`` label of the stage-seconds histogram."""
    totals: Dict[str, float] = {}
    for labels, seconds in registry.histogram_sums(STAGE_SECONDS).items():
        stage = dict(labels).get("stage", "unknown")
        totals[stage] = totals.get(stage, 0.0) + seconds
    return dict(sorted(totals.items()))


def group_stage_totals(totals: Dict[str, float]) -> dict:
    """Collapse per-stage seconds into the paper's learning/design/sampling axes.

    Scoring rides with learning (both are the classifier side of the split);
    pilot and stage-II draws are sampling.  Returns seconds and shares, the
    shape embedded in the tracked BENCH breakdowns.
    """
    groups = {"learning": 0.0, "design": 0.0, "sampling": 0.0, "other": 0.0}
    for stage, seconds in totals.items():
        if "learning" in stage or "scoring" in stage:
            groups["learning"] += seconds
        elif "design" in stage:
            groups["design"] += seconds
        elif stage in ("lss.pilot", "lss.stage2", "lws.sampling"):
            groups["sampling"] += seconds
        else:
            groups["other"] += seconds
    total = sum(groups.values())
    return {
        "seconds": {name: round(value, 6) for name, value in groups.items()},
        "shares": {
            name: (round(value / total, 4) if total > 0 else 0.0)
            for name, value in groups.items()
        },
        "total_seconds": round(total, 6),
    }


def merge_snapshots(snapshots: Iterable[Mapping]) -> MetricsRegistry:
    """Fold worker snapshots into a fresh registry (parallel bench reporting)."""
    combined = MetricsRegistry()
    for snapshot in snapshots:
        combined.merge(snapshot)
    return combined
