"""Synthetic Sports (MLB pitching) dataset.

The paper's Type 1 workload is a k-skyband query over yearly pitching
statistics (~47 000 player-season tuples).  This generator produces a table
with the same flavour: heavy-tailed, positively correlated counting stats
(strikeouts, wins, innings pitched, ...) plus rate stats (ERA, WHIP), so that
the two skyband attributes exhibit the strong correlation and dense Pareto
frontier that make the query selective for small ``k``.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.cache import cached_table
from repro.query.table import Table
from repro.sampling.rng import SeedLike, resolve_rng

DEFAULT_SPORTS_ROWS = 47_000
SKYBAND_X_COLUMN = "strikeouts"
SKYBAND_Y_COLUMN = "wins"


def generate_sports_table(
    num_rows: int = DEFAULT_SPORTS_ROWS,
    seed: SeedLike = 7,
    name: str = "sports",
) -> Table:
    """Generate a synthetic pitching-statistics table.

    Args:
        num_rows: number of player-season rows (the paper uses ~47 000).
        seed: RNG seed; the same seed always generates the same table.
        name: table name.

    Returns:
        A :class:`~repro.query.table.Table` with columns ``player_id``,
        ``year``, ``games``, ``innings``, ``strikeouts``, ``walks``, ``wins``,
        ``losses``, ``saves``, ``era`` and ``whip``.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    return cached_table(
        "sports",
        {"num_rows": num_rows, "seed": seed},
        lambda: _generate(num_rows, seed, name),
        name=name,
    )


def _generate(num_rows: int, seed: SeedLike, name: str) -> Table:
    rng = resolve_rng(seed)

    # Latent "pitcher quality" and "workload" factors drive the correlated
    # counting stats, mimicking how real pitching lines co-vary.
    quality = rng.normal(0.0, 1.0, size=num_rows)
    workload = np.clip(rng.gamma(shape=2.0, scale=0.5, size=num_rows), 0.05, None)

    games = np.clip(rng.poisson(12 + 18 * workload), 1, 82)
    innings = np.clip(workload * 60 + rng.normal(0, 12, size=num_rows), 1.0, 260.0)
    strikeout_rate = np.clip(6.5 + 2.2 * quality + rng.normal(0, 0.8, size=num_rows), 1.0, 14.0)
    strikeouts = np.clip(innings * strikeout_rate / 9.0 + rng.normal(0, 5, size=num_rows), 0, None)
    walk_rate = np.clip(3.4 - 0.7 * quality + rng.normal(0, 0.7, size=num_rows), 0.5, 8.0)
    walks = np.clip(innings * walk_rate / 9.0 + rng.normal(0, 3, size=num_rows), 0, None)
    era = np.clip(4.2 - 0.9 * quality + rng.normal(0, 0.7, size=num_rows), 0.5, 12.0)
    whip = np.clip(1.30 - 0.18 * quality + rng.normal(0, 0.12, size=num_rows), 0.6, 2.6)

    win_propensity = innings / 35.0 + 1.1 * quality + rng.normal(0, 1.0, size=num_rows)
    wins = np.clip(np.round(np.maximum(win_propensity, 0.0)), 0, 27)
    losses = np.clip(
        np.round(innings / 40.0 - 0.6 * quality + rng.normal(0, 1.2, size=num_rows)), 0, 24
    )
    is_reliever = workload < 0.6
    saves = np.where(
        is_reliever, rng.poisson(4, size=num_rows), rng.poisson(0.2, size=num_rows)
    )

    years = rng.integers(1975, 2019, size=num_rows)
    player_ids = rng.integers(0, max(num_rows // 6, 1), size=num_rows)

    return Table(
        {
            "player_id": player_ids.astype(np.int64),
            "year": years.astype(np.int64),
            "games": games.astype(np.int64),
            "innings": innings.astype(np.float64),
            "strikeouts": strikeouts.astype(np.float64),
            "walks": walks.astype(np.float64),
            "wins": wins.astype(np.float64),
            "losses": losses.astype(np.float64),
            "saves": saves.astype(np.int64),
            "era": era.astype(np.float64),
            "whip": whip.astype(np.float64),
        },
        name=name,
    )
