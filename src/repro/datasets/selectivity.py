"""Selectivity calibration for the experiment workloads.

Table 1 of the paper defines six result-set sizes per dataset, from XS
(~1-2 % of objects) to XXL (~87-90 %), obtained by changing the query
parameters (the skyband depth ``k`` for Sports, the neighbour threshold ``k``
at fixed distance ``d`` for Neighbors).  The calibrators here pick those
parameters so the realised selectivity matches the target fraction as closely
as the (integer) parameter permits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.query.predicates import NeighborCountPredicate, SkybandPredicate
from repro.query.table import Table

#: Target positive fractions per level, taken from Table 1 (averaging the
#: two datasets where they differ slightly).
SELECTIVITY_LEVELS: dict[str, float] = {
    "XS": 0.015,
    "S": 0.10,
    "M": 0.27,
    "L": 0.45,
    "XL": 0.72,
    "XXL": 0.88,
}


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of calibrating a query parameter to a selectivity target.

    Attributes:
        parameter: the chosen integer parameter (``k``).
        achieved_fraction: realised positive fraction at that parameter.
        target_fraction: the requested fraction.
        positive_count: number of positive objects at that parameter.
    """

    parameter: int
    achieved_fraction: float
    target_fraction: float
    positive_count: int


def _level_fraction(level: str | float) -> float:
    if isinstance(level, str):
        if level not in SELECTIVITY_LEVELS:
            raise ValueError(
                f"unknown selectivity level {level!r}; known: {sorted(SELECTIVITY_LEVELS)}"
            )
        return SELECTIVITY_LEVELS[level]
    fraction = float(level)
    if not 0.0 < fraction < 1.0:
        raise ValueError("selectivity fraction must lie strictly between 0 and 1")
    return fraction


def _calibrate_threshold(
    counts: np.ndarray, target_fraction: float, strict: bool
) -> CalibrationResult:
    """Choose the integer threshold whose selectivity is closest to the target.

    ``counts`` holds the per-object statistic (dominator count or neighbour
    count).  When ``strict`` the predicate is ``count < k``; otherwise it is
    ``count <= k``.
    """
    counts = np.asarray(counts)
    num_objects = counts.size
    sorted_counts = np.sort(counts)
    candidate_ks = np.unique(counts)
    # For "< k" the interesting thresholds are observed counts + 1; for
    # "<= k" they are the observed counts themselves.
    thresholds = candidate_ks + 1 if strict else candidate_ks
    side = "left" if strict else "right"
    positives = np.searchsorted(sorted_counts, thresholds, side=side)
    fractions = positives / num_objects
    best_index = int(np.argmin(np.abs(fractions - target_fraction)))
    return CalibrationResult(
        parameter=int(thresholds[best_index]),
        achieved_fraction=float(fractions[best_index]),
        target_fraction=target_fraction,
        positive_count=int(positives[best_index]),
    )


def calibrate_skyband_depth(
    table: Table,
    x_column: str,
    y_column: str,
    level: str | float,
) -> CalibrationResult:
    """Pick the skyband depth ``k`` hitting a Table-1 selectivity level."""
    target = _level_fraction(level)
    probe = SkybandPredicate(x_column, y_column, k=1)
    counts = probe.dominance_counts(table)
    return _calibrate_threshold(counts, target, strict=True)


def calibrate_neighbor_threshold(
    table: Table,
    x_column: str,
    y_column: str,
    distance: float,
    level: str | float,
) -> CalibrationResult:
    """Pick the neighbour threshold ``k`` (at fixed ``d``) for a level."""
    target = _level_fraction(level)
    probe = NeighborCountPredicate(x_column, y_column, max_neighbors=0, distance=distance)
    counts = probe.neighbor_counts(table)
    return _calibrate_threshold(counts, target, strict=False)
