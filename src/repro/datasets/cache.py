"""Opt-in on-disk cache for the generated seeded datasets.

Dataset generation is deterministic but not free (tens of millions of RNG
draws at the paper's full sizes), and CI regenerates the same seeded tables
in every job of the matrix.  When the ``REPRO_DATASET_CACHE`` environment
variable names a directory, :func:`cached_table` memoises generator output
there as ``.npz`` archives keyed by the generator's parameters, so the CI
workflow can persist the directory between jobs with ``actions/cache``
(keyed on the dataset modules' content hash — any generator change
invalidates the whole cache).

float64/int64 columns round-trip bit-exactly through ``.npz``, so a cache
hit is byte-identical to regeneration; a version stamp guards against layout
changes, and unreadable or stale entries fall back to regeneration instead
of failing.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Callable, Mapping

import numpy as np

from repro.query.table import Table

#: Environment variable naming the cache directory; unset disables caching.
CACHE_ENV_VAR = "REPRO_DATASET_CACHE"

#: Bump when the archive layout changes; stamped into every cache key.
CACHE_FORMAT_VERSION = 1

_ORDER_KEY = "__column_order__"


def dataset_cache_dir() -> Path | None:
    """The active cache directory, or ``None`` when caching is disabled."""
    root = os.environ.get(CACHE_ENV_VAR, "").strip()
    return Path(root) if root else None


def _cache_key(kind: str, parameters: Mapping[str, object]) -> str:
    normalised = {
        key: (
            int(value)
            if isinstance(value, np.integer)
            else float(value)
            if isinstance(value, np.floating)
            else value
        )
        for key, value in parameters.items()
    }
    payload = json.dumps(
        {"kind": kind, "version": CACHE_FORMAT_VERSION, "parameters": normalised},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def load_archive_columns(path: Path) -> tuple[list[str], dict[str, np.ndarray]] | None:
    """Read a cache archive as raw column pages (order, name -> array).

    Shared by :func:`cached_table` (which wraps the pages in a
    :class:`~repro.query.table.Table`) and the shared-memory layer
    (:func:`repro.parallel.shm.publish_cached_dataset`, which copies them
    straight into segments without building a table).  Returns ``None`` for
    any unreadable or malformed entry.
    """
    try:
        with np.load(path, allow_pickle=False) as archive:
            order = [str(column) for column in archive[_ORDER_KEY]]
            columns = {column: archive[column] for column in order}
    except (OSError, KeyError, ValueError, zipfile.BadZipFile):
        # Covers every way a cache entry goes bad: unreadable file, missing
        # archive members, non-zip garbage (ValueError) and zip-magic files
        # with a corrupt directory (BadZipFile, which is not an OSError).
        return None
    return order, columns


def cached_archive_path(kind: str, parameters: Mapping[str, object]) -> Path | None:
    """Path the archive for ``(kind, parameters)`` would live at, if cacheable.

    ``None`` when caching is disabled or the parameters have no stable key;
    the file itself may or may not exist yet.
    """
    root = dataset_cache_dir()
    if root is None or not _is_plain(parameters):
        return None
    return root / f"{kind}-{_cache_key(kind, parameters)}.npz"


def _load(path: Path, name: str) -> Table | None:
    loaded = load_archive_columns(path)
    if loaded is None:
        return None
    _, columns = loaded
    return Table(columns, name=name)


def _store(path: Path, table: Table) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {name: table.column(name) for name in table.column_names}
    payload[_ORDER_KEY] = np.array(table.column_names)
    # Write-then-rename keeps concurrent matrix jobs from ever observing a
    # half-written archive.  A failed write is never fatal (the cache is an
    # optimisation) but must not strand temp files for actions/cache to
    # persist, so cleanup runs on every exit path.
    handle, temporary = tempfile.mkstemp(dir=path.parent, suffix=".npz.tmp")
    try:
        try:
            with os.fdopen(handle, "wb") as stream:
                np.savez(stream, **payload)
            os.replace(temporary, path)
        finally:
            if os.path.exists(temporary):
                os.unlink(temporary)
    except OSError:
        pass


def cached_table(
    kind: str,
    parameters: Mapping[str, object],
    builder: Callable[[], Table],
    name: str,
) -> Table:
    """Return the memoised table for ``(kind, parameters)`` or build it.

    Caching only engages when :data:`CACHE_ENV_VAR` is set *and* every
    parameter is plain data (an RNG ``Generator`` seed, for example, has no
    stable key and bypasses the cache).  The table's ``name`` is not part of
    the key — the same rows materialised under a different name reuse the
    same archive.
    """
    path = cached_archive_path(kind, parameters)
    if path is None:
        return builder()
    if path.is_file():
        table = _load(path, name)
        if table is not None:
            return table
    table = builder()
    _store(path, table)
    return table


def _is_plain(parameters: Mapping[str, object]) -> bool:
    return all(
        value is None
        or isinstance(value, (bool, int, float, str, np.integer, np.floating))
        for value in parameters.values()
    )
