"""Synthetic stand-ins for the paper's evaluation datasets.

The paper evaluates on MLB pitching statistics ("Sports", ~47 k player-season
rows, k-skyband query) and a KDD Cup 1999 sample ("Neighbors", ~73 k
connection records with 41 features, few-neighbours query).  Neither dataset
ships with this repository, so :mod:`repro.datasets.sports` and
:mod:`repro.datasets.neighbors` generate synthetic tables with the same
schema shape, scale and skew characteristics, and
:mod:`repro.datasets.selectivity` calibrates the query parameters to hit the
paper's XS…XXL result-set sizes (Table 1).
"""

from repro.datasets.neighbors import generate_neighbors_table
from repro.datasets.selectivity import (
    SELECTIVITY_LEVELS,
    calibrate_neighbor_threshold,
    calibrate_skyband_depth,
)
from repro.datasets.sports import generate_sports_table

__all__ = [
    "SELECTIVITY_LEVELS",
    "calibrate_neighbor_threshold",
    "calibrate_skyband_depth",
    "generate_neighbors_table",
    "generate_sports_table",
]
