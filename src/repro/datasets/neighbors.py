"""Synthetic Neighbors (KDD Cup 1999 style) dataset.

The paper's Type 2 workload asks, over ~73 000 network-connection records
with 41 features, which records have at most ``k`` other records within
distance ``d`` — sparse records are the interesting (anomalous) ones.  This
generator produces a mixture of dense "normal traffic" clusters and diffuse
"attack"/scan records in a 2-d activity space (connection count vs. bytes
transferred, log scale), plus 39 additional correlated and categorical-coded
features so the table has the same 41-column shape.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.cache import cached_table
from repro.query.table import Table
from repro.sampling.rng import SeedLike, resolve_rng

DEFAULT_NEIGHBORS_ROWS = 73_000
NEIGHBOR_X_COLUMN = "conn_count"
NEIGHBOR_Y_COLUMN = "bytes_log"
NUM_EXTRA_FEATURES = 39


def generate_neighbors_table(
    num_rows: int = DEFAULT_NEIGHBORS_ROWS,
    seed: SeedLike = 11,
    num_clusters: int = 6,
    anomaly_fraction: float = 0.08,
    name: str = "neighbors",
) -> Table:
    """Generate a synthetic connection-records table.

    Args:
        num_rows: number of connection records (the paper samples ~73 000).
        seed: RNG seed.
        num_clusters: number of dense "normal traffic" clusters.
        anomaly_fraction: fraction of diffuse, low-density records.
        name: table name.

    Returns:
        A table whose first two columns (``conn_count``, ``bytes_log``) are
        the coordinates used by the neighbour-count predicate, followed by 39
        additional feature columns (``feature_03`` ... ``feature_41``) and a
        ``is_attack`` indicator of the generating component.
    """
    if num_rows <= 0:
        raise ValueError("num_rows must be positive")
    if not 0.0 <= anomaly_fraction < 1.0:
        raise ValueError("anomaly_fraction must lie in [0, 1)")
    if num_clusters <= 0:
        raise ValueError("num_clusters must be positive")
    return cached_table(
        "neighbors",
        {
            "num_rows": num_rows,
            "seed": seed,
            "num_clusters": num_clusters,
            "anomaly_fraction": anomaly_fraction,
        },
        lambda: _generate(num_rows, seed, num_clusters, anomaly_fraction, name),
        name=name,
    )


def _generate(
    num_rows: int,
    seed: SeedLike,
    num_clusters: int,
    anomaly_fraction: float,
    name: str,
) -> Table:
    rng = resolve_rng(seed)

    num_anomalies = int(round(anomaly_fraction * num_rows))
    num_normal = num_rows - num_anomalies

    # Dense clusters with heavy radial tails: most normal traffic concentrates
    # around a handful of service profiles (KDD Cup traffic is dominated by
    # near-duplicate records) while rarer variants trail off with distance, so
    # a record's neighbour count decays smoothly as it sits further from its
    # cluster core.  That smooth density gradient is what lets the query's
    # selectivity be swept from XS to XXL by moving the count threshold.
    centers = rng.uniform(5.0, 95.0, size=(num_clusters, 2))
    spreads = rng.uniform(0.4, 1.2, size=num_clusters)
    assignments = rng.integers(0, num_clusters, size=num_normal)
    radial_tail = rng.lognormal(mean=0.0, sigma=0.9, size=num_normal)
    normal_points = centers[assignments] + rng.normal(
        0.0, 1.0, size=(num_normal, 2)
    ) * (spreads[assignments] * radial_tail)[:, None]

    # Diffuse anomalies: scans and rare services scattered over the space.
    anomaly_points = rng.uniform(0.0, 100.0, size=(num_anomalies, 2))

    points = np.vstack([normal_points, anomaly_points])
    is_attack = np.concatenate(
        [np.zeros(num_normal, dtype=np.int64), np.ones(num_anomalies, dtype=np.int64)]
    )
    order = rng.permutation(num_rows)
    points = points[order]
    is_attack = is_attack[order]

    columns: dict[str, np.ndarray] = {
        NEIGHBOR_X_COLUMN: points[:, 0],
        NEIGHBOR_Y_COLUMN: points[:, 1],
    }

    # Additional features: a mix of noisy transforms of the coordinates (so
    # some features correlate with the label, as in KDD Cup data) and pure
    # noise / low-cardinality categorical codes.
    for feature_index in range(NUM_EXTRA_FEATURES):
        feature_name = f"feature_{feature_index + 3:02d}"
        kind = feature_index % 3
        if kind == 0:
            values = (
                0.4 * points[:, 0]
                - 0.2 * points[:, 1]
                + rng.normal(0, 5.0, size=num_rows)
            )
        elif kind == 1:
            values = rng.normal(0.0, 1.0, size=num_rows)
        else:
            values = rng.integers(0, 5, size=num_rows).astype(np.float64)
        columns[feature_name] = values

    columns["is_attack"] = is_attack
    return Table(columns, name=name)
